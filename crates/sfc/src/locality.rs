//! Empirical locality analysis of space-filling curves.
//!
//! §III-B of the paper defines a curve as *distance-bound* when
//! `dist(i, i+j) ≤ α·√j + o(√j)` for every `i, j`, and *aligned* (Lemma 4)
//! when every `4^k` consecutive elements fit inside a `2·2^k × 2·2^k`
//! subgrid. This module measures both properties so that the experiment
//! harness can print measured α values next to the proven constants
//! (Hilbert 3, Peano √(10⅔), H-index 2√2) and show that Z-order, row-major
//! and serpentine orders are unbounded.
//!
//! All measurements run on the batch interface
//! ([`Curve::point_range_batch`] / [`Curve::point_batch`]): each curve
//! position is transformed exactly once — in parallel for large grids —
//! and the scans then run over the materialized coordinate array. The
//! materialization is capped at [`MATERIALIZE_MAX`] positions; beyond
//! that the functions fall back to the on-the-fly strided scans, so
//! the `stride` parameter keeps bounding memory on huge grids exactly
//! as it did before the batch rewrite.

use crate::geom::{manhattan, BoundingBox, GridPoint};
use crate::Curve;

/// Largest curve (in positions) the measurement functions will
/// materialize as one coordinate array (4M points ≈ 32 MiB); larger
/// curves use the on-the-fly strided scans.
pub const MATERIALIZE_MAX: u64 = 1 << 22;

/// Measured locality of one index gap `j` on a curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapStretch {
    /// The index gap `j`.
    pub gap: u64,
    /// `max_i dist(i, i+j)` over the sampled starting positions.
    pub max_dist: u64,
    /// `max_dist / √gap` — the per-gap distance-bound constant.
    pub ratio: f64,
}

/// Maximum `dist(i, i+j)` over all `i` in `0..len-j`, sampled with the
/// given stride (stride 1 is exhaustive).
pub fn max_dist_for_gap<C: Curve + Sync>(curve: &C, gap: u64, stride: u64) -> u64 {
    assert!(gap >= 1, "gap must be positive");
    assert!(stride >= 1, "stride must be positive");
    let n = curve.len();
    if gap >= n {
        return 0;
    }
    let starts: Vec<u64> = (0..n - gap).step_by(stride as usize).collect();
    let ends: Vec<u64> = starts.iter().map(|&i| i + gap).collect();
    let mut from = vec![GridPoint::default(); starts.len()];
    let mut to = vec![GridPoint::default(); ends.len()];
    curve.point_batch(&starts, &mut from);
    curve.point_batch(&ends, &mut to);
    max_dist_of(&from, &to)
}

/// Measures [`GapStretch`] for each gap in `gaps`. The curve is
/// transformed once (batch), then every gap scans the shared
/// coordinate array.
pub fn stretch_profile<C: Curve + Sync>(curve: &C, gaps: &[u64], stride: u64) -> Vec<GapStretch> {
    assert!(stride >= 1, "stride must be positive");
    let n = curve.len();
    let points = (n <= MATERIALIZE_MAX).then(|| curve.all_points());
    gaps.iter()
        .map(|&gap| {
            assert!(gap >= 1, "gap must be positive");
            let max_dist = if gap >= n {
                0
            } else if let Some(points) = &points {
                let lim = points.len() - gap as usize;
                (0..lim)
                    .step_by(stride as usize)
                    .map(|i| manhattan(points[i], points[i + gap as usize]))
                    .max()
                    .unwrap_or(0)
            } else {
                // Huge curve: on-the-fly strided scan, O(1) memory.
                (0..n - gap)
                    .step_by(stride as usize)
                    .map(|i| manhattan(curve.point(i), curve.point(i + gap)))
                    .max()
                    .unwrap_or(0)
            };
            GapStretch {
                gap,
                max_dist,
                ratio: max_dist as f64 / (gap as f64).sqrt(),
            }
        })
        .collect()
}

/// Empirical distance-bound constant: the worst `dist/√j` over a sweep of
/// power-of-two gaps. For a distance-bound curve this converges to its α;
/// for Z-order/row-major it grows with the grid side.
pub fn alpha_estimate<C: Curve + Sync>(curve: &C, stride: u64) -> f64 {
    let n = curve.len();
    let mut gaps = Vec::new();
    let mut g = 1u64;
    while g < n {
        gaps.push(g);
        g *= 2;
    }
    stretch_profile(curve, &gaps, stride)
        .into_iter()
        .map(|s| s.ratio)
        .fold(0.0, f64::max)
}

/// Checks the alignment property of Lemma 4 on *sampled* windows: every
/// `4^k` consecutive elements must fit in a `2·2^k`-sided box. Returns the
/// largest observed `max_side / 2^k` ratio (≤ 2 means aligned).
pub fn alignment_ratio<C: Curve + Sync>(curve: &C, k: u32, stride: u64) -> f64 {
    let window = 4u64.pow(k);
    let n = curve.len();
    if window > n {
        return 0.0;
    }
    let worst = if n <= MATERIALIZE_MAX {
        let points = curve.all_points();
        let window = window as usize;
        (0..=points.len() - window)
            .step_by(stride as usize)
            .map(|start| {
                BoundingBox::of_points(points[start..start + window].iter().copied())
                    .map(|bb| bb.max_side())
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    } else {
        // Huge curve: transform each sampled window on the fly.
        (0..=n - window)
            .step_by(stride as usize)
            .map(|start| {
                BoundingBox::of_points((start..start + window).map(|i| curve.point(i)))
                    .map(|bb| bb.max_side())
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    };
    worst as f64 / (1u64 << k) as f64
}

/// Average Manhattan distance between consecutive curve positions — 1.0
/// for edge-connected curves (Hilbert, Peano, serpentine), larger for
/// Z-order and row-major.
pub fn mean_step_distance<C: Curve + Sync>(curve: &C) -> f64 {
    let n = curve.len();
    if n < 2 {
        return 0.0;
    }
    // Blocked batch transform with one position of overlap: batch
    // speed, O(block) memory on any curve size.
    const BLOCK: u64 = 1 << 16;
    let mut buf = vec![GridPoint::default(); BLOCK.min(n) as usize];
    let mut total = 0u64;
    let mut start = 0u64;
    while start + 1 < n {
        let len = (n - start).min(BLOCK);
        let chunk = &mut buf[..len as usize];
        curve.point_range_batch(start, chunk);
        total += chunk.windows(2).map(|w| manhattan(w[0], w[1])).sum::<u64>();
        // Overlap by one so the seam step is counted exactly once
        // (the loop guard keeps len ≥ 2, so this always progresses).
        start += len - 1;
    }
    total as f64 / (n - 1) as f64
}

/// Maximum pairwise Manhattan distance between aligned coordinate
/// slices, reduced across worker threads.
fn max_dist_of(from: &[GridPoint], to: &[GridPoint]) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    assert_eq!(from.len(), to.len());
    let global = AtomicU64::new(0);
    crate::par_scan(from, crate::PAR_BATCH_MIN, |offset, part| {
        let local = part
            .iter()
            .zip(&to[offset..offset + part.len()])
            .map(|(&a, &b)| manhattan(a, b))
            .max()
            .unwrap_or(0);
        global.fetch_max(local, Ordering::Relaxed);
    });
    global.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CurveKind;

    #[test]
    fn hilbert_alpha_close_to_three() {
        let c = CurveKind::Hilbert.with_side(64);
        let a = alpha_estimate(&c, 1);
        assert!(a <= 3.01, "Hilbert α measured {a} > 3");
        assert!(a > 1.5, "Hilbert α measured {a} suspiciously small");
    }

    #[test]
    fn peano_alpha_within_proof() {
        let c = CurveKind::Peano.with_side(27);
        let a = alpha_estimate(&c, 1);
        let bound = (10.0 + 2.0 / 3.0f64).sqrt() + 0.01;
        assert!(a <= bound, "Peano α measured {a} > {bound}");
    }

    #[test]
    fn zorder_alpha_grows_with_side() {
        let small = alpha_estimate(&CurveKind::ZOrder.with_side(16), 1);
        let large = alpha_estimate(&CurveKind::ZOrder.with_side(128), 1);
        assert!(
            large > small * 1.8,
            "Z-order α should grow with side: {small} vs {large}"
        );
    }

    #[test]
    fn rowmajor_alpha_unbounded() {
        let a = alpha_estimate(&CurveKind::RowMajor.with_side(64), 1);
        assert!(a > 8.0, "row-major α measured only {a}");
    }

    #[test]
    fn hilbert_is_aligned() {
        let c = CurveKind::Hilbert.with_side(32);
        for k in 0..=3 {
            let r = alignment_ratio(&c, k, 7);
            assert!(r <= 2.0, "alignment ratio {r} > 2 at k={k}");
        }
    }

    #[test]
    fn zorder_unaligned_windows_can_be_far_apart() {
        // Lemma 3: unaligned Z-order windows span two subgrids "connected
        // by some diagonal and could therefore be far apart" — the
        // alignment ratio over arbitrary windows exceeds 2, which is
        // exactly why Theorem 2 needs the Ed diagonal accounting.
        let c = CurveKind::ZOrder.with_side(32);
        let r = alignment_ratio(&c, 2, 1);
        assert!(r > 2.0, "expected unaligned Z windows to spread, got {r}");
    }

    #[test]
    fn mean_step_distance_edge_connected() {
        assert_eq!(mean_step_distance(&CurveKind::Hilbert.with_side(16)), 1.0);
        assert_eq!(mean_step_distance(&CurveKind::Peano.with_side(9)), 1.0);
        assert_eq!(
            mean_step_distance(&CurveKind::Serpentine.with_side(10)),
            1.0
        );
        assert!(mean_step_distance(&CurveKind::ZOrder.with_side(16)) > 1.0);
        assert!(mean_step_distance(&CurveKind::RowMajor.with_side(16)) > 1.0);
    }

    #[test]
    fn stretch_profile_shapes() {
        let c = CurveKind::Hilbert.with_side(16);
        let profile = stretch_profile(&c, &[1, 4, 16, 64], 1);
        assert_eq!(profile.len(), 4);
        assert_eq!(profile[0].max_dist, 1, "unit gap on Hilbert is adjacent");
        for w in profile.windows(2) {
            assert!(w[0].max_dist <= w[1].max_dist, "max dist must be monotone");
        }
    }

    #[test]
    fn gap_larger_than_curve() {
        let c = CurveKind::Hilbert.with_side(4);
        assert_eq!(max_dist_for_gap(&c, 100, 1), 0);
        assert_eq!(stretch_profile(&c, &[100], 1)[0].max_dist, 0);
    }

    #[test]
    fn strided_and_exhaustive_agree_on_structured_curves() {
        // Batch max_dist_for_gap must agree with a direct scalar scan.
        let c = CurveKind::Hilbert.with_side(32);
        for gap in [1u64, 3, 17, 64] {
            let direct = (0..c.len() - gap)
                .map(|i| manhattan(c.point(i), c.point(i + gap)))
                .max()
                .unwrap();
            assert_eq!(max_dist_for_gap(&c, gap, 1), direct, "gap {gap}");
        }
    }
}
