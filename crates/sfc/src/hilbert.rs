//! The Hilbert curve.
//!
//! The Hilbert curve of order `k` covers a `2^k × 2^k` grid so that
//! consecutive curve positions are always grid-adjacent. It is
//! *distance-bound* with constant `α = 3` (Niedermeier & Sanders): sending
//! a message from the `i`-th to the `(i+j)`-th processor costs at most
//! `3·√j + o(√j)` energy. It is also *aligned* in the sense of Lemma 4:
//! any `4^k` consecutive positions fit inside a `2·2^k × 2·2^k` box.

use crate::geom::GridPoint;
use crate::Curve;

/// Hilbert curve over a `side × side` grid (`side` a power of two).
#[derive(Debug, Clone)]
pub struct HilbertCurve {
    side: u32,
    order: u32,
}

impl HilbertCurve {
    /// Creates the Hilbert curve for a grid with the given side length.
    ///
    /// # Panics
    /// Panics when `side` is zero or not a power of two.
    pub fn new(side: u32) -> Self {
        assert!(side > 0, "Hilbert curve needs a positive side");
        assert!(
            side.is_power_of_two(),
            "Hilbert curve side must be a power of two, got {side}"
        );
        HilbertCurve {
            side,
            order: side.trailing_zeros(),
        }
    }

    /// Curve order `k` (the grid is `2^k × 2^k`).
    pub fn order(&self) -> u32 {
        self.order
    }
}

impl Curve for HilbertCurve {
    fn side(&self) -> u32 {
        self.side
    }

    fn point(&self, index: u64) -> GridPoint {
        debug_assert!(index < self.len(), "index {index} out of curve range");
        let mut t = index;
        let (mut x, mut y) = (0u64, 0u64);
        let mut s = 1u64;
        let n = self.side as u64;
        while s < n {
            let rx = 1 & (t / 2);
            let ry = 1 & (t ^ rx);
            rotate(s, &mut x, &mut y, rx, ry);
            x += s * rx;
            y += s * ry;
            t /= 4;
            s *= 2;
        }
        GridPoint::new(x as u32, y as u32)
    }

    fn index(&self, p: GridPoint) -> u64 {
        debug_assert!(p.x < self.side && p.y < self.side, "{p} outside grid");
        let (mut x, mut y) = (p.x as u64, p.y as u64);
        let mut d = 0u64;
        let mut s = (self.side as u64) / 2;
        while s > 0 {
            let rx = u64::from((x & s) > 0);
            let ry = u64::from((y & s) > 0);
            d += s * s * ((3 * rx) ^ ry);
            rotate(s, &mut x, &mut y, rx, ry);
            s /= 2;
        }
        d
    }
}

/// One step of the Hilbert quadrant rotation/reflection.
#[inline]
fn rotate(s: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
    if ry == 0 {
        if rx == 1 {
            *x = s.wrapping_sub(1).wrapping_sub(*x);
            *y = s.wrapping_sub(1).wrapping_sub(*y);
        }
        std::mem::swap(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{manhattan, BoundingBox};
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = HilbertCurve::new(3);
    }

    #[test]
    #[should_panic(expected = "positive side")]
    fn rejects_zero_side() {
        let _ = HilbertCurve::new(0);
    }

    #[test]
    fn order_of_first_cells_is_consistent() {
        // Whatever the orientation convention, position 0 must be a corner
        // and the first four positions must cover one 2x2 quadrant.
        let c = HilbertCurve::new(4);
        let p0 = c.point(0);
        assert!(
            (p0.x == 0 || p0.x == 3) && (p0.y == 0 || p0.y == 3),
            "start must be a corner, got {p0}"
        );
        let bb = BoundingBox::of_points((0..4).map(|i| c.point(i))).unwrap();
        assert_eq!(bb.max_side(), 2);
    }

    #[test]
    fn consecutive_positions_are_adjacent() {
        for order in 0..=5 {
            let c = HilbertCurve::new(1 << order);
            for i in 1..c.len() {
                let a = c.point(i - 1);
                let b = c.point(i);
                assert!(
                    a.is_adjacent(b),
                    "order {order}: positions {} and {i} not adjacent: {a} vs {b}",
                    i - 1
                );
            }
        }
    }

    #[test]
    fn bijective_roundtrip_small_orders() {
        for order in 0..=5 {
            let c = HilbertCurve::new(1 << order);
            let mut seen = vec![false; c.len() as usize];
            for i in 0..c.len() {
                let p = c.point(i);
                assert!(p.x < c.side() && p.y < c.side());
                assert_eq!(c.index(p), i, "roundtrip failed at {i}");
                let cell = (p.y * c.side() + p.x) as usize;
                assert!(!seen[cell], "cell {p} visited twice");
                seen[cell] = true;
            }
            assert!(seen.iter().all(|&v| v));
        }
    }

    #[test]
    fn alignment_property_lemma4() {
        // Any 4^k consecutive (not necessarily aligned) elements fit in a
        // 2·2^k × 2·2^k box.
        let c = HilbertCurve::new(32);
        for k in 0..=3u32 {
            let window = 4u64.pow(k);
            let limit = 2 * (1u64 << k);
            for start in (0..c.len() - window).step_by(37) {
                let bb =
                    BoundingBox::of_points((start..start + window).map(|i| c.point(i))).unwrap();
                assert!(
                    (bb.max_side() as u64) <= limit,
                    "window [{start}, {}) spans {} > {limit}",
                    start + window,
                    bb.max_side()
                );
            }
        }
    }

    #[test]
    fn distance_bound_alpha_three() {
        // dist(i, i+j) ≤ 3√j + small slack on a 64x64 grid.
        let c = HilbertCurve::new(64);
        let n = c.len();
        for i in (0..n).step_by(11) {
            for shift in 0..12 {
                let j = 1u64 << shift;
                if i + j >= n {
                    break;
                }
                let d = manhattan(c.point(i), c.point(i + j)) as f64;
                let bound = 3.0 * (j as f64).sqrt() + 2.0;
                assert!(
                    d <= bound,
                    "dist({i}, {}) = {d} exceeds 3√{j} + 2 = {bound}",
                    i + j
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(order in 1u32..7, idx in 0u64..4096) {
            let c = HilbertCurve::new(1 << order);
            let idx = idx % c.len();
            prop_assert_eq!(c.index(c.point(idx)), idx);
        }

        #[test]
        fn prop_adjacent_steps(order in 1u32..7, idx in 0u64..4095) {
            let c = HilbertCurve::new(1 << order);
            let idx = idx % (c.len() - 1);
            prop_assert_eq!(manhattan(c.point(idx), c.point(idx + 1)), 1);
        }
    }
}
