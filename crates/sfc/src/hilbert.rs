//! The Hilbert curve.
//!
//! The Hilbert curve of order `k` covers a `2^k × 2^k` grid so that
//! consecutive curve positions are always grid-adjacent. It is
//! *distance-bound* with constant `α = 3` (Niedermeier & Sanders): sending
//! a message from the `i`-th to the `(i+j)`-th processor costs at most
//! `3·√j + o(√j)` energy. It is also *aligned* in the sense of Lemma 4:
//! any `4^k` consecutive positions fit inside a `2·2^k × 2·2^k` box.
//!
//! # Implementation
//!
//! `point`/`index` are the inner loop of every energy charge in the
//! simulator, so they run a **branchless lookup-table state machine**
//! built at compile time: the curve orientation inside a quadrant is
//! one of four dihedral transforms, and the `(state, digits) → (cell
//! bits, next state)` tables come in one-, two-, four-, and five-level
//! granularities. Orders divisible by five walk [`POINT5`]/[`INDEX5`]
//! (ten index bits per dependent lookup — order 10, the `1024×1024`
//! benchmark grid, finishes in two); all other orders peel the
//! `order mod 4` head levels with [`POINT1`]/[`POINT2`] and then
//! consume eight index bits per [`POINT4`] step. The seed's branchy
//! rotate-and-swap loop is retained as
//! [`crate::reference::hilbert_point_scalar`] for benchmarking and
//! differential tests; both produce the identical classic curve
//! (position 0 at the origin, order-1 cells `(0,0) (0,1) (1,1) (1,0)`).

use crate::geom::GridPoint;
use crate::Curve;

/// A dihedral transform on a square, packed as bitflags:
/// bit 0 = transpose, bit 1 = negate x, bit 2 = negate y
/// (transpose applies first). Only four of the eight elements are
/// reachable from the Hilbert recursion.
type Transform = u8;

const IDENTITY: Transform = 0b000;
const TRANSPOSE: Transform = 0b001;
const ANTITRANSPOSE: Transform = 0b111;
const ROTATE180: Transform = 0b110;

/// The reachable states, indexed by the 2-bit state id used in the
/// tables.
const STATES: [Transform; 4] = [IDENTITY, TRANSPOSE, ANTITRANSPOSE, ROTATE180];

/// `compose(a, b)(p) = a(b(p))`.
const fn compose(a: Transform, b: Transform) -> Transform {
    let swap = (a ^ b) & 1;
    let (bx, by) = ((b >> 1) & 1, (b >> 2) & 1);
    // When `a` transposes, b's axis negations swap roles.
    let (bx, by) = if a & 1 == 1 { (by, bx) } else { (bx, by) };
    let nx = ((a >> 1) & 1) ^ bx;
    let ny = ((a >> 2) & 1) ^ by;
    swap | (nx << 1) | (ny << 2)
}

/// Applies a transform to a cell of the 2×2 grid (packed `x << 1 | y`).
const fn apply2(t: Transform, cell: u8) -> u8 {
    let (mut x, mut y) = ((cell >> 1) & 1, cell & 1);
    if t & 1 == 1 {
        let tmp = x;
        x = y;
        y = tmp;
    }
    x ^= (t >> 1) & 1;
    y ^= (t >> 2) & 1;
    (x << 1) | y
}

/// State id of a transform within [`STATES`].
const fn state_id(t: Transform) -> u8 {
    let mut i = 0;
    while i < 4 {
        if STATES[i] == t {
            return i as u8;
        }
        i += 1;
    }
    panic!("unreachable Hilbert state");
}

/// Base order-1 curve: quadrant digit → cell (`x << 1 | y`).
/// Cells (0,0), (0,1), (1,1), (1,0) — the classic U opening right.
const BASE_CELL: [u8; 4] = [0b00, 0b01, 0b11, 0b10];

/// Sub-curve orientation per quadrant digit of the base curve.
const BASE_CHILD: [Transform; 4] = [TRANSPOSE, IDENTITY, IDENTITY, ANTITRANSPOSE];

/// One-level point table: `POINT1[state][quadrant digit]` packs
/// `cell (2 bits) | next_state << 2`.
pub(crate) const POINT1: [[u8; 4]; 4] = {
    let mut table = [[0u8; 4]; 4];
    let mut s = 0;
    while s < 4 {
        let mut q = 0;
        while q < 4 {
            let cell = apply2(STATES[s], BASE_CELL[q]);
            let next = state_id(compose(STATES[s], BASE_CHILD[q]));
            table[s][q] = cell | (next << 2);
            q += 1;
        }
        s += 1;
    }
    table
};

/// One-level index table: `INDEX1[state][cell]` packs
/// `quadrant digit (2 bits) | next_state << 2`.
pub(crate) const INDEX1: [[u8; 4]; 4] = {
    let mut table = [[0u8; 4]; 4];
    let mut s = 0;
    while s < 4 {
        let mut q = 0;
        while q < 4 {
            let packed = POINT1[s][q];
            let (cell, next) = (packed & 3, packed >> 2);
            table[s][cell as usize] = (q as u8) | (next << 2);
            q += 1;
        }
        s += 1;
    }
    table
};

/// Two-level point table: `POINT2[state][4 index bits]` packs
/// `x bits (2) | y bits << 2 | next_state << 4`.
pub(crate) const POINT2: [[u8; 16]; 4] = {
    let mut table = [[0u8; 16]; 4];
    let mut s = 0;
    while s < 4 {
        let mut q = 0;
        while q < 16 {
            let hi = POINT1[s][q >> 2];
            let mid = hi >> 2;
            let lo = POINT1[mid as usize][q & 3];
            let x = ((hi >> 1) & 1) << 1 | ((lo >> 1) & 1);
            let y = (hi & 1) << 1 | (lo & 1);
            table[s][q] = x | (y << 2) | ((lo >> 2) << 4);
            q += 1;
        }
        s += 1;
    }
    table
};

/// Two-level index table: `INDEX2[state][x bits (2) | y bits << 2]`
/// packs `4 index bits | next_state << 4`.
pub(crate) const INDEX2: [[u8; 16]; 4] = {
    let mut table = [[0u8; 16]; 4];
    let mut s = 0;
    while s < 4 {
        let mut cell = 0;
        while cell < 16 {
            let packed = POINT2[s][cell];
            let xy = packed & 0b1111;
            table[s][xy as usize] = (cell as u8) | ((packed >> 4) << 4);
            cell += 1;
        }
        s += 1;
    }
    table
};

/// Four-level point table (the hot-loop workhorse):
/// `POINT4[state][8 index bits]` packs
/// `x bits (4) | y bits << 4 | next_state << 8` in a `u16`.
/// 4 × 256 × 2 B = 2 KiB — comfortably L1-resident.
pub(crate) const POINT4: [[u16; 256]; 4] = {
    let mut table = [[0u16; 256]; 4];
    let mut s = 0;
    while s < 4 {
        let mut q = 0;
        while q < 256 {
            let hi = POINT2[s][q >> 4];
            let mid = (hi >> 4) as usize;
            let lo = POINT2[mid][q & 15];
            let x = ((hi & 3) << 2 | (lo & 3)) as u16;
            let y = (((hi >> 2) & 3) << 2 | ((lo >> 2) & 3)) as u16;
            table[s][q] = x | (y << 4) | (((lo >> 4) as u16) << 8);
            q += 1;
        }
        s += 1;
    }
    table
};

/// Four-level index table: `INDEX4[state][x bits (4) | y bits << 4]`
/// packs `8 index bits | next_state << 8` in a `u16`.
pub(crate) const INDEX4: [[u16; 256]; 4] = {
    let mut table = [[0u16; 256]; 4];
    let mut s = 0;
    while s < 4 {
        let mut q = 0;
        while q < 256 {
            let packed = POINT4[s][q];
            let xy = (packed & 0xFF) as usize;
            table[s][xy] = (q as u16) | ((packed >> 8) << 8);
            q += 1;
        }
        s += 1;
    }
    table
};

/// Five-level point table for orders divisible by five (order 10 — the
/// `1024×1024` acceptance grid — walks in exactly **two** dependent
/// lookups): `POINT5[state][10 index bits]` packs
/// `x bits (5) | y bits << 5 | next_state << 10` in a `u16`.
/// 4 × 1024 × 2 B = 8 KiB.
pub(crate) const POINT5: [[u16; 1024]; 4] = {
    let mut table = [[0u16; 1024]; 4];
    let mut s = 0;
    while s < 4 {
        let mut q = 0;
        while q < 1024 {
            let hi = POINT1[s][q >> 8];
            let mid = (hi >> 2) as usize;
            let lo = POINT4[mid][q & 255];
            let x = ((((hi >> 1) & 1) as u16) << 4) | (lo & 15);
            let y = (((hi & 1) as u16) << 4) | ((lo >> 4) & 15);
            table[s][q] = x | (y << 5) | ((lo >> 8) << 10);
            q += 1;
        }
        s += 1;
    }
    table
};

/// Five-level index table: `INDEX5[state][x bits (5) | y bits << 5]`
/// packs `10 index bits | next_state << 10` in a `u16`.
pub(crate) const INDEX5: [[u16; 1024]; 4] = {
    let mut table = [[0u16; 1024]; 4];
    let mut s = 0;
    while s < 4 {
        let mut q = 0;
        while q < 1024 {
            let packed = POINT5[s][q];
            let xy = (packed & 0x3FF) as usize;
            table[s][xy] = (q as u16) | ((packed >> 10) << 10);
            q += 1;
        }
        s += 1;
    }
    table
};

/// Hilbert curve over a `side × side` grid (`side` a power of two).
#[derive(Debug, Clone)]
pub struct HilbertCurve {
    side: u32,
    order: u32,
}

impl HilbertCurve {
    /// Creates the Hilbert curve for a grid with the given side length.
    ///
    /// # Panics
    /// Panics when `side` is zero or not a power of two.
    pub fn new(side: u32) -> Self {
        assert!(side > 0, "Hilbert curve needs a positive side");
        assert!(
            side.is_power_of_two(),
            "Hilbert curve side must be a power of two, got {side}"
        );
        HilbertCurve {
            side,
            order: side.trailing_zeros(),
        }
    }

    /// Curve order `k` (the grid is `2^k × 2^k`).
    pub fn order(&self) -> u32 {
        self.order
    }

    /// LUT walk without the bounds check; `index` must be `< len()`.
    ///
    /// The index is pre-shifted so each step reads its digits from the
    /// top bits (no per-step level arithmetic): the `order mod 4` head
    /// levels peel off with the small tables, then each counted-loop
    /// iteration consumes eight index bits through [`POINT4`].
    #[inline]
    pub(crate) fn point_unchecked(&self, index: u64) -> GridPoint {
        let order = self.order;
        if order == 0 {
            return GridPoint::new(0, 0);
        }
        let mut t = index << (64 - 2 * order);
        let mut state = 0usize;
        let (mut x, mut y) = (0u32, 0u32);
        if order.is_multiple_of(5) {
            // Shortest dependent-load chain: ten index bits per step.
            for _ in 0..order / 5 {
                let packed = POINT5[state][(t >> 54) as usize];
                t <<= 10;
                x = (x << 5) | (packed & 31) as u32;
                y = (y << 5) | ((packed >> 5) & 31) as u32;
                state = ((packed >> 10) & 3) as usize;
            }
            return GridPoint::new(x, y);
        }
        if order & 1 == 1 {
            let packed = POINT1[0][(t >> 62) as usize];
            t <<= 2;
            x = ((packed >> 1) & 1) as u32;
            y = (packed & 1) as u32;
            state = ((packed >> 2) & 3) as usize;
        }
        if order & 2 == 2 {
            let packed = POINT2[state][(t >> 60) as usize];
            t <<= 4;
            x = (x << 2) | (packed & 3) as u32;
            y = (y << 2) | ((packed >> 2) & 3) as u32;
            state = ((packed >> 4) & 3) as usize;
        }
        for _ in 0..order / 4 {
            let packed = POINT4[state][(t >> 56) as usize];
            t <<= 8;
            x = (x << 4) | (packed & 15) as u32;
            y = (y << 4) | ((packed >> 4) & 15) as u32;
            state = ((packed >> 8) & 3) as usize;
        }
        GridPoint::new(x, y)
    }

    /// LUT walk without the bounds check; `p` must be inside the grid.
    #[inline]
    pub(crate) fn index_unchecked(&self, p: GridPoint) -> u64 {
        let order = self.order;
        if order == 0 {
            return 0;
        }
        let mut xs = p.x << (32 - order);
        let mut ys = p.y << (32 - order);
        let mut state = 0usize;
        let mut d = 0u64;
        if order.is_multiple_of(5) {
            for _ in 0..order / 5 {
                let cell = (xs >> 27) | ((ys >> 27) << 5);
                xs <<= 5;
                ys <<= 5;
                let packed = INDEX5[state][cell as usize];
                d = (d << 10) | (packed & 0x3FF) as u64;
                state = ((packed >> 10) & 3) as usize;
            }
            return d;
        }
        if order & 1 == 1 {
            let cell = ((xs >> 31) << 1) | (ys >> 31);
            xs <<= 1;
            ys <<= 1;
            let packed = INDEX1[0][cell as usize];
            d = (packed & 3) as u64;
            state = ((packed >> 2) & 3) as usize;
        }
        if order & 2 == 2 {
            let cell = (xs >> 30) | ((ys >> 30) << 2);
            xs <<= 2;
            ys <<= 2;
            let packed = INDEX2[state][cell as usize];
            d = (d << 4) | (packed & 15) as u64;
            state = ((packed >> 4) & 3) as usize;
        }
        for _ in 0..order / 4 {
            let cell = (xs >> 28) | ((ys >> 28) << 4);
            xs <<= 4;
            ys <<= 4;
            let packed = INDEX4[state][cell as usize];
            d = (d << 8) | (packed & 255) as u64;
            state = ((packed >> 8) & 3) as usize;
        }
        d
    }
}

impl Curve for HilbertCurve {
    fn side(&self) -> u32 {
        self.side
    }

    /// Maps a curve position to its grid coordinate.
    ///
    /// # Panics
    /// Panics when `index ≥ len()` — a real bounds check even in
    /// release builds, since a silently wrapped position would charge
    /// energy for a processor that does not exist.
    fn point(&self, index: u64) -> GridPoint {
        // One shift+compare: index < 4^order ⟺ no bits at 2·order and up.
        assert!(
            index >> (2 * self.order) == 0,
            "curve position {index} out of range (len {})",
            self.len()
        );
        self.point_unchecked(index)
    }

    /// Maps a grid coordinate back to its curve position.
    ///
    /// # Panics
    /// Panics when `p` lies outside the grid.
    fn index(&self, p: GridPoint) -> u64 {
        // One or: both coordinates inside ⟺ their union is.
        assert!(
            (p.x | p.y) < self.side,
            "{p} outside the {0}×{0} grid",
            self.side
        );
        self.index_unchecked(p)
    }

    fn point_batch(&self, indices: &[u64], out: &mut [GridPoint]) {
        assert_eq!(indices.len(), out.len(), "batch size mismatch");
        let side = self.side;
        let min_chunk = crate::thresholds::SFC_FILL.min_par_items();
        crate::par_map_fill(indices, out, min_chunk, |idx, dst| {
            crate::swar::hilbert_point_chunk(side, idx, dst);
        });
    }

    fn index_batch(&self, points: &[GridPoint], out: &mut [u64]) {
        assert_eq!(points.len(), out.len(), "batch size mismatch");
        let side = self.side;
        let min_chunk = crate::thresholds::SFC_FILL.min_par_items();
        crate::par_map_fill(points, out, min_chunk, |pts, dst| {
            crate::swar::hilbert_index_chunk(side, pts, dst);
        });
    }

    fn point_range_batch(&self, start: u64, out: &mut [GridPoint]) {
        let end = start
            .checked_add(out.len() as u64)
            .expect("curve position range overflows u64");
        assert!(end <= self.len(), "range end {end} out of curve range");
        let side = self.side;
        let min_chunk = crate::thresholds::SFC_FILL.min_par_items();
        crate::par_fill(out, min_chunk, |offset, dst| {
            crate::swar::hilbert_point_range_chunk(side, start + offset as u64, dst);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{manhattan, BoundingBox};
    use crate::reference;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = HilbertCurve::new(3);
    }

    #[test]
    #[should_panic(expected = "positive side")]
    fn rejects_zero_side() {
        let _ = HilbertCurve::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_bounds_checked_in_release() {
        let c = HilbertCurve::new(4);
        let _ = c.point(16);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn index_bounds_checked_in_release() {
        let c = HilbertCurve::new(4);
        let _ = c.index(GridPoint::new(4, 0));
    }

    #[test]
    fn tables_are_consistent() {
        // Every state/digit round-trips through the paired tables.
        for s in 0..4usize {
            for (q, &packed) in POINT1[s].iter().enumerate() {
                let cell = (packed & 3) as usize;
                assert_eq!((INDEX1[s][cell] & 3) as usize, q);
                assert_eq!(INDEX1[s][cell] >> 2, packed >> 2);
            }
            for (q, &packed) in POINT2[s].iter().enumerate() {
                let cell = (packed & 15) as usize;
                assert_eq!((INDEX2[s][cell] & 15) as usize, q);
                assert_eq!(INDEX2[s][cell] >> 4, packed >> 4);
            }
            for (q, &packed) in POINT4[s].iter().enumerate() {
                let cell = (packed & 255) as usize;
                assert_eq!((INDEX4[s][cell] & 255) as usize, q);
                assert_eq!(INDEX4[s][cell] >> 8, packed >> 8);
            }
            for (q, &packed) in POINT5[s].iter().enumerate() {
                let cell = (packed & 0x3FF) as usize;
                assert_eq!((INDEX5[s][cell] & 0x3FF) as usize, q);
                assert_eq!(INDEX5[s][cell] >> 10, packed >> 10);
            }
        }
    }

    #[test]
    fn lut_matches_scalar_reference_exhaustively() {
        // The optimized state machine must reproduce the seed scalar
        // curve bit for bit, on both even and odd orders.
        for order in 0..=6u32 {
            let side = 1u32 << order;
            let c = HilbertCurve::new(side);
            for i in 0..c.len() {
                let expect = reference::hilbert_point_scalar(side, i);
                assert_eq!(c.point(i), expect, "order {order} point({i})");
                assert_eq!(
                    c.index(expect),
                    reference::hilbert_index_scalar(side, expect),
                    "order {order} index({expect})"
                );
            }
        }
    }

    #[test]
    fn order_of_first_cells_is_consistent() {
        // Whatever the orientation convention, position 0 must be a corner
        // and the first four positions must cover one 2x2 quadrant.
        let c = HilbertCurve::new(4);
        let p0 = c.point(0);
        assert!(
            (p0.x == 0 || p0.x == 3) && (p0.y == 0 || p0.y == 3),
            "start must be a corner, got {p0}"
        );
        let bb = BoundingBox::of_points((0..4).map(|i| c.point(i))).unwrap();
        assert_eq!(bb.max_side(), 2);
    }

    #[test]
    fn consecutive_positions_are_adjacent() {
        for order in 0..=5 {
            let c = HilbertCurve::new(1 << order);
            for i in 1..c.len() {
                let a = c.point(i - 1);
                let b = c.point(i);
                assert!(
                    a.is_adjacent(b),
                    "order {order}: positions {} and {i} not adjacent: {a} vs {b}",
                    i - 1
                );
            }
        }
    }

    #[test]
    fn bijective_roundtrip_small_orders() {
        for order in 0..=5 {
            let c = HilbertCurve::new(1 << order);
            let mut seen = vec![false; c.len() as usize];
            for i in 0..c.len() {
                let p = c.point(i);
                assert!(p.x < c.side() && p.y < c.side());
                assert_eq!(c.index(p), i, "roundtrip failed at {i}");
                let cell = (p.y * c.side() + p.x) as usize;
                assert!(!seen[cell], "cell {p} visited twice");
                seen[cell] = true;
            }
            assert!(seen.iter().all(|&v| v));
        }
    }

    #[test]
    fn alignment_property_lemma4() {
        // Any 4^k consecutive (not necessarily aligned) elements fit in a
        // 2·2^k × 2·2^k box.
        let c = HilbertCurve::new(32);
        for k in 0..=3u32 {
            let window = 4u64.pow(k);
            let limit = 2 * (1u64 << k);
            for start in (0..c.len() - window).step_by(37) {
                let bb =
                    BoundingBox::of_points((start..start + window).map(|i| c.point(i))).unwrap();
                assert!(
                    (bb.max_side() as u64) <= limit,
                    "window [{start}, {}) spans {} > {limit}",
                    start + window,
                    bb.max_side()
                );
            }
        }
    }

    #[test]
    fn distance_bound_alpha_three() {
        // dist(i, i+j) ≤ 3√j + small slack on a 64x64 grid.
        let c = HilbertCurve::new(64);
        let n = c.len();
        for i in (0..n).step_by(11) {
            for shift in 0..12 {
                let j = 1u64 << shift;
                if i + j >= n {
                    break;
                }
                let d = manhattan(c.point(i), c.point(i + j)) as f64;
                let bound = 3.0 * (j as f64).sqrt() + 2.0;
                assert!(
                    d <= bound,
                    "dist({i}, {}) = {d} exceeds 3√{j} + 2 = {bound}",
                    i + j
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(order in 1u32..7, idx in 0u64..4096) {
            let c = HilbertCurve::new(1 << order);
            let idx = idx % c.len();
            prop_assert_eq!(c.index(c.point(idx)), idx);
        }

        #[test]
        fn prop_adjacent_steps(order in 1u32..7, idx in 0u64..4095) {
            let c = HilbertCurve::new(1 << order);
            let idx = idx % (c.len() - 1);
            prop_assert_eq!(manhattan(c.point(idx), c.point(idx + 1)), 1);
        }

        #[test]
        fn prop_matches_reference(order in 1u32..11, idx in 0u64..u64::MAX) {
            let side = 1u32 << order;
            let c = HilbertCurve::new(side);
            let idx = idx % c.len();
            let p = reference::hilbert_point_scalar(side, idx);
            prop_assert_eq!(c.point(idx), p);
            prop_assert_eq!(c.index(p), idx);
        }
    }
}
