//! SWAR batch kernels for the hot curve transforms.
//!
//! The per-element LUT walks in [`crate::hilbert`] and the magic-mask
//! pipeline in [`crate::zorder`] are the inner loop of every machine
//! build and every batch query the engines serve. This module rewrites
//! them as *SWAR* (SIMD-within-a-register) kernels that run on stable
//! Rust — no `core::simd` required — with three tricks, each validated
//! by microbenchmark before it was adopted:
//!
//! 1. **State-lane-packed LUT rows** (Hilbert). The scalar walk loads
//!    `TABLE[state][cell]` — the *address* depends on the previous
//!    step's state, so every step is a dependent load. The packed
//!    tables store all four states' entries in one word per cell
//!    (`ROW[cell] = e₀ | e₁≪16 | e₂≪32 | e₃≪48`); the load address then
//!    depends only on the input coordinates, and the state machine
//!    collapses to an ALU shift-select `(ROW[cell] >> (state·16))`.
//!    This is the "gather-free" packing: the memory system streams
//!    independent loads while the cheap shift chain carries the state.
//! 2. **Const-generic order specialization** (Hilbert). The scalar
//!    walk's `for _ in 0..order/5` has a runtime trip count, which
//!    blocks unrolling and was measured to be the dominant cost. The
//!    batch kernels dispatch once per *chunk* to a `walk::<ORDER>`
//!    monomorphization whose trip count is a compile-time constant.
//! 3. **Fused validation + lane-packed decode** (Z-order). Encode
//!    accumulates the bounds union *inside* the transform pass and
//!    checks it once per chunk (exact, because the grid side is a
//!    power of two: `OR(coords) < side ⟺ ∀ coords < side`). Decode
//!    packs two ≤32-bit curve positions into one `u64` and runs the
//!    5-step magic-mask compact on both lanes at once — the masks are
//!    lane-repeating and every shift stays inside its 32-bit lane
//!    after masking.
//!
//! The pre-PR scalar loops are retained below as `*_chunk_scalar`
//! differential references; the test suite pins every SWAR kernel
//! bit-identical to them, and `cargo bench`/`experiments` measure the
//! speedup against them. With the optional `simd` cargo feature (nightly
//! only) the Z-order kernels swap their inner passes for `core::simd`
//! four-lane variants; the Hilbert walk stays SWAR in both modes
//! because its gather-free formulation is already load-limited, not
//! ALU-limited (see `crates/sfc/DESIGN.md`).

use crate::geom::GridPoint;
use crate::hilbert::{INDEX1, INDEX2, INDEX4, INDEX5, POINT1, POINT2, POINT4, POINT5};
use crate::zorder::{deinterleave, interleave, interleave_xy};
use crate::Curve;

// ---------------------------------------------------------------------------
// State-lane-packed Hilbert tables.
// ---------------------------------------------------------------------------

/// Packs the four per-state `u16` rows of a Hilbert LUT into one `u64`
/// per cell: lane `s` (bits `16s..16s+16`) holds state `s`'s entry.
const fn pack_u16_lanes<const N: usize>(t: &[[u16; N]; 4]) -> [u64; N] {
    let mut out = [0u64; N];
    let mut i = 0;
    while i < N {
        out[i] = t[0][i] as u64
            | (t[1][i] as u64) << 16
            | (t[2][i] as u64) << 32
            | (t[3][i] as u64) << 48;
        i += 1;
    }
    out
}

/// Packs the four per-state `u8` rows into one `u32` per cell (lane `s`
/// at bits `8s..8s+8`; the 2-level entries use at most 6 bits).
const fn pack_u8_lanes<const N: usize>(t: &[[u8; N]; 4]) -> [u32; N] {
    let mut out = [0u32; N];
    let mut i = 0;
    while i < N {
        out[i] = t[0][i] as u32
            | (t[1][i] as u32) << 8
            | (t[2][i] as u32) << 16
            | (t[3][i] as u32) << 24;
        i += 1;
    }
    out
}

/// [`POINT5`] with all four states packed per cell (12-bit entries in
/// 16-bit lanes).
static POINT5P: [u64; 1024] = pack_u16_lanes(&POINT5);
/// [`INDEX5`] with all four states packed per cell.
static INDEX5P: [u64; 1024] = pack_u16_lanes(&INDEX5);
/// [`POINT4`] packed (10-bit entries in 16-bit lanes).
static POINT4P: [u64; 256] = pack_u16_lanes(&POINT4);
/// [`INDEX4`] packed.
static INDEX4P: [u64; 256] = pack_u16_lanes(&INDEX4);
/// [`POINT2`] packed (6-bit entries in 8-bit lanes).
static POINT2P: [u32; 16] = pack_u8_lanes(&POINT2);
/// [`INDEX2`] packed.
static INDEX2P: [u32; 16] = pack_u8_lanes(&INDEX2);

// ---------------------------------------------------------------------------
// Const-generic Hilbert walks.
// ---------------------------------------------------------------------------

/// Grid coordinate → curve position, specialized per curve order so the
/// step loops have compile-time trip counts (LLVM fully unrolls them).
/// `ORDER` must be in `1..=31`; the caller handles order 0. Out-of-grid
/// coordinates produce garbage but never an out-of-bounds table read
/// (every cell value is masked by construction).
#[inline(always)]
fn hilbert_index_walk<const ORDER: u32>(p: GridPoint) -> u64 {
    let mut xs = p.x << (32 - ORDER);
    let mut ys = p.y << (32 - ORDER);
    let mut state = 0u32;
    let mut d = 0u64;
    if ORDER.is_multiple_of(5) {
        // Ten bits per step through the packed 1024-cell table.
        for _ in 0..ORDER / 5 {
            let cell = (xs >> 27) | ((ys >> 27) << 5);
            xs <<= 5;
            ys <<= 5;
            let e = (INDEX5P[cell as usize] >> (state * 16)) as u16;
            d = (d << 10) | (e & 0x3FF) as u64;
            state = (e >> 10) as u32 & 3;
        }
        return d;
    }
    if ORDER & 1 == 1 {
        let cell = ((xs >> 31) << 1) | (ys >> 31);
        xs <<= 1;
        ys <<= 1;
        // The head step always starts in state 0: plain row access.
        let e = INDEX1[0][cell as usize];
        d = (e & 3) as u64;
        state = (e >> 2) as u32 & 3;
    }
    if ORDER & 2 == 2 {
        let cell = (xs >> 30) | ((ys >> 30) << 2);
        xs <<= 2;
        ys <<= 2;
        let e = (INDEX2P[cell as usize] >> (state * 8)) as u8;
        d = (d << 4) | (e & 15) as u64;
        state = (e >> 4) as u32 & 3;
    }
    for _ in 0..ORDER / 4 {
        let cell = (xs >> 28) | ((ys >> 28) << 4);
        xs <<= 4;
        ys <<= 4;
        let e = (INDEX4P[cell as usize] >> (state * 16)) as u16;
        d = (d << 8) | (e & 255) as u64;
        state = (e >> 8) as u32 & 3;
    }
    d
}

/// Curve position → grid coordinate; the inverse of
/// [`hilbert_index_walk`], same specialization contract.
#[inline(always)]
fn hilbert_point_walk<const ORDER: u32>(index: u64) -> GridPoint {
    let mut t = index << (64 - 2 * ORDER);
    let mut state = 0u32;
    let (mut x, mut y) = (0u32, 0u32);
    if ORDER.is_multiple_of(5) {
        for _ in 0..ORDER / 5 {
            let e = (POINT5P[(t >> 54) as usize] >> (state * 16)) as u16;
            t <<= 10;
            x = (x << 5) | (e & 31) as u32;
            y = (y << 5) | ((e >> 5) & 31) as u32;
            state = (e >> 10) as u32 & 3;
        }
        return GridPoint::new(x, y);
    }
    if ORDER & 1 == 1 {
        let e = POINT1[0][(t >> 62) as usize];
        t <<= 2;
        x = ((e >> 1) & 1) as u32;
        y = (e & 1) as u32;
        state = (e >> 2) as u32 & 3;
    }
    if ORDER & 2 == 2 {
        let e = (POINT2P[(t >> 60) as usize] >> (state * 8)) as u8;
        t <<= 4;
        x = (x << 2) | (e & 3) as u32;
        y = (y << 2) | ((e >> 2) & 3) as u32;
        state = (e >> 4) as u32 & 3;
    }
    for _ in 0..ORDER / 4 {
        let e = (POINT4P[(t >> 56) as usize] >> (state * 16)) as u16;
        t <<= 8;
        x = (x << 4) | (e & 15) as u32;
        y = (y << 4) | ((e >> 4) & 15) as u32;
        state = (e >> 8) as u32 & 3;
    }
    GridPoint::new(x, y)
}

/// Dispatches `$body!(ORDER)` with the runtime order as a const
/// generic argument, for orders `1..=31` (a `u32` grid side is a power
/// of two, so its order is at most 31; order 0 is handled before
/// dispatch).
macro_rules! with_order {
    ($order:expr, $body:ident) => {
        match $order {
            1 => $body!(1),
            2 => $body!(2),
            3 => $body!(3),
            4 => $body!(4),
            5 => $body!(5),
            6 => $body!(6),
            7 => $body!(7),
            8 => $body!(8),
            9 => $body!(9),
            10 => $body!(10),
            11 => $body!(11),
            12 => $body!(12),
            13 => $body!(13),
            14 => $body!(14),
            15 => $body!(15),
            16 => $body!(16),
            17 => $body!(17),
            18 => $body!(18),
            19 => $body!(19),
            20 => $body!(20),
            21 => $body!(21),
            22 => $body!(22),
            23 => $body!(23),
            24 => $body!(24),
            25 => $body!(25),
            26 => $body!(26),
            27 => $body!(27),
            28 => $body!(28),
            29 => $body!(29),
            30 => $body!(30),
            _ => $body!(31),
        }
    };
}

// ---------------------------------------------------------------------------
// Cold panic paths (message-compatible with the scalar per-element
// asserts; the hot loops validate with one fused union check).
// ---------------------------------------------------------------------------

#[cold]
#[inline(never)]
fn bad_point(side: u32, pts: &[GridPoint]) -> ! {
    let p = pts
        .iter()
        .find(|p| p.x >= side || p.y >= side)
        .expect("union check fired without an offending point");
    panic!("{p} outside the {side}×{side} grid");
}

#[cold]
#[inline(never)]
fn bad_index(len: u64, indices: &[u64]) -> ! {
    let i = indices
        .iter()
        .find(|&&i| i >= len)
        .expect("union check fired without an offending index");
    panic!("curve position {i} out of range (len {len})");
}

// ---------------------------------------------------------------------------
// Hilbert chunk kernels.
// ---------------------------------------------------------------------------

/// Batch Hilbert encode over one contiguous chunk:
/// `out[k] = index(pts[k])`. Panics like the scalar path when a point
/// is outside the grid (checked once per chunk via the bounds union).
pub fn hilbert_index_chunk(side: u32, pts: &[GridPoint], out: &mut [u64]) {
    debug_assert_eq!(pts.len(), out.len(), "batch size mismatch");
    let order = side.trailing_zeros();
    let mut union = 0u32;
    if order == 0 {
        for (o, p) in out.iter_mut().zip(pts) {
            union |= p.x | p.y;
            *o = 0;
        }
    } else {
        macro_rules! run {
            ($ord:expr) => {
                for (o, p) in out.iter_mut().zip(pts) {
                    union |= p.x | p.y;
                    *o = hilbert_index_walk::<$ord>(*p);
                }
            };
        }
        with_order!(order, run);
    }
    if union >= side {
        bad_point(side, pts);
    }
}

/// Batch Hilbert decode over one contiguous chunk:
/// `out[k] = point(indices[k])`. Panics like the scalar path when a
/// position is out of range (checked once per chunk via the union).
pub fn hilbert_point_chunk(side: u32, indices: &[u64], out: &mut [GridPoint]) {
    debug_assert_eq!(indices.len(), out.len(), "batch size mismatch");
    let order = side.trailing_zeros();
    let mut union = 0u64;
    if order == 0 {
        for (o, &i) in out.iter_mut().zip(indices) {
            union |= i;
            *o = GridPoint::new(0, 0);
        }
    } else {
        macro_rules! run {
            ($ord:expr) => {
                for (o, &i) in out.iter_mut().zip(indices) {
                    union |= i;
                    *o = hilbert_point_walk::<$ord>(i);
                }
            };
        }
        with_order!(order, run);
    }
    // len = 4^order is a power of two, so the union check is exact.
    if union >> (2 * order) != 0 {
        bad_index((side as u64) * (side as u64), indices);
    }
}

/// Batch Hilbert decode over the contiguous position range
/// `start..start + out.len()`; the caller validates the range.
pub fn hilbert_point_range_chunk(side: u32, start: u64, out: &mut [GridPoint]) {
    let order = side.trailing_zeros();
    if order == 0 {
        out.fill(GridPoint::new(0, 0));
        return;
    }
    macro_rules! run {
        ($ord:expr) => {
            for (k, o) in out.iter_mut().enumerate() {
                *o = hilbert_point_walk::<$ord>(start + k as u64);
            }
        };
    }
    with_order!(order, run);
}

// ---------------------------------------------------------------------------
// Z-order chunk kernels.
// ---------------------------------------------------------------------------

/// Compacts the even bits of both 32-bit lanes of `w` at once: returns
/// the 16-bit results for the low and high lane. The masks repeat per
/// lane and every intermediate shift stays inside its lane after
/// masking, so two Morton codes ride one register.
#[inline]
fn deinterleave_pair(w: u64) -> (u32, u32) {
    let mut x = w & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    (x as u32, (x >> 32) as u32)
}

/// Decodes two packed curve positions (`lo | hi ≪ 32`, both `< 2³²`)
/// into their grid coordinates.
#[inline]
fn zorder_point_pair(w: u64) -> (GridPoint, GridPoint) {
    let (x0, x1) = deinterleave_pair(w);
    // Bit 31 of `w >> 1` is the high lane's bit 0 leaking across, but
    // it sits at an odd position and the first mask clears it.
    let (y0, y1) = deinterleave_pair(w >> 1);
    (GridPoint::new(x0, y0), GridPoint::new(x1, y1))
}

/// Batch Z-order encode over one contiguous chunk, validation fused
/// into the transform pass (one union check per chunk).
pub fn zorder_index_chunk(side: u32, pts: &[GridPoint], out: &mut [u64]) {
    debug_assert_eq!(pts.len(), out.len(), "batch size mismatch");
    let mut union = 0u32;
    if side as u64 <= 1 << 16 {
        encode_fused(pts, out, &mut union);
    } else {
        for (o, p) in out.iter_mut().zip(pts) {
            union |= p.x | p.y;
            *o = interleave(p.x) | (interleave(p.y) << 1);
        }
    }
    if union >= side {
        bad_point(side, pts);
    }
}

/// The fused-pipeline encode pass for grids up to 2¹⁶ × 2¹⁶ (stable
/// SWAR default; the `simd` feature swaps in a four-lane variant).
#[cfg(not(feature = "simd"))]
#[inline]
fn encode_fused(pts: &[GridPoint], out: &mut [u64], union: &mut u32) {
    let mut u = 0u32;
    for (o, p) in out.iter_mut().zip(pts) {
        u |= p.x | p.y;
        *o = interleave_xy(p.x, p.y);
    }
    *union |= u;
}

#[cfg(feature = "simd")]
#[inline]
fn encode_fused(pts: &[GridPoint], out: &mut [u64], union: &mut u32) {
    use core::simd::Simd;
    const L: usize = 4;
    let mut u = 0u32;
    let (head, tail) = pts.split_at(pts.len() - pts.len() % L);
    let (ohead, otail) = out.split_at_mut(head.len());
    for (chunk, dst) in head.chunks_exact(L).zip(ohead.chunks_exact_mut(L)) {
        let mut z = Simd::<u64, L>::from_array(std::array::from_fn(|k| {
            u |= chunk[k].x | chunk[k].y;
            ((chunk[k].y as u64) << 32) | chunk[k].x as u64
        }));
        z = (z | (z << Simd::splat(8))) & Simd::splat(0x00FF_00FF_00FF_00FF);
        z = (z | (z << Simd::splat(4))) & Simd::splat(0x0F0F_0F0F_0F0F_0F0F);
        z = (z | (z << Simd::splat(2))) & Simd::splat(0x3333_3333_3333_3333);
        z = (z | (z << Simd::splat(1))) & Simd::splat(0x5555_5555_5555_5555);
        let merged = (z & Simd::splat(0xFFFF_FFFF)) | ((z >> Simd::splat(32)) << Simd::splat(1));
        dst.copy_from_slice(merged.as_array());
    }
    for (o, p) in otail.iter_mut().zip(tail) {
        u |= p.x | p.y;
        *o = interleave_xy(p.x, p.y);
    }
    *union |= u;
}

/// Batch Z-order decode over one contiguous chunk, two positions per
/// register for grids whose positions fit 32 bits.
pub fn zorder_point_chunk(side: u32, indices: &[u64], out: &mut [GridPoint]) {
    debug_assert_eq!(indices.len(), out.len(), "batch size mismatch");
    let len = (side as u64) * (side as u64);
    let mut union = 0u64;
    if len <= 1 << 32 {
        decode_paired(indices, out, &mut union);
    } else {
        for (o, &i) in out.iter_mut().zip(indices) {
            union |= i;
            *o = GridPoint::new(deinterleave(i), deinterleave(i >> 1));
        }
    }
    // len is a power of two, so the union check is exact.
    if union >= len {
        bad_index(len, indices);
    }
}

/// The pair-packed decode pass (stable SWAR default; the `simd`
/// feature swaps in a four-lane variant).
#[cfg(not(feature = "simd"))]
#[inline]
fn decode_paired(indices: &[u64], out: &mut [GridPoint], union: &mut u64) {
    let mut u = 0u64;
    let pairs = indices.len() / 2;
    let (head, tail) = indices.split_at(pairs * 2);
    let (ohead, otail) = out.split_at_mut(pairs * 2);
    for (pair, dst) in head.chunks_exact(2).zip(ohead.chunks_exact_mut(2)) {
        u |= pair[0] | pair[1];
        let (p0, p1) = zorder_point_pair(pair[0] | (pair[1] << 32));
        dst[0] = p0;
        dst[1] = p1;
    }
    if let (Some(&i), Some(o)) = (tail.first(), otail.first_mut()) {
        u |= i;
        *o = GridPoint::new(deinterleave(i), deinterleave(i >> 1));
    }
    *union |= u;
}

#[cfg(feature = "simd")]
#[inline]
fn decode_paired(indices: &[u64], out: &mut [GridPoint], union: &mut u64) {
    use core::simd::Simd;
    const L: usize = 4;
    let mut u = 0u64;
    let (head, tail) = indices.split_at(indices.len() - indices.len() % L);
    let (ohead, otail) = out.split_at_mut(head.len());
    let lane_compact = |mut v: Simd<u64, L>| -> Simd<u64, L> {
        v &= Simd::splat(0x5555_5555_5555_5555);
        v = (v | (v >> Simd::splat(1))) & Simd::splat(0x3333_3333_3333_3333);
        v = (v | (v >> Simd::splat(2))) & Simd::splat(0x0F0F_0F0F_0F0F_0F0F);
        v = (v | (v >> Simd::splat(4))) & Simd::splat(0x00FF_00FF_00FF_00FF);
        v = (v | (v >> Simd::splat(8))) & Simd::splat(0x0000_FFFF_0000_FFFF);
        (v | (v >> Simd::splat(16))) & Simd::splat(0x0000_0000_FFFF_FFFF)
    };
    for (chunk, dst) in head.chunks_exact(L).zip(ohead.chunks_exact_mut(L)) {
        let z = Simd::<u64, L>::from_slice(chunk);
        u |= chunk.iter().fold(0, |a, &b| a | b);
        let xs = lane_compact(z);
        let ys = lane_compact(z >> Simd::splat(1));
        for k in 0..L {
            dst[k] = GridPoint::new(xs[k] as u32, ys[k] as u32);
        }
    }
    for (o, &i) in otail.iter_mut().zip(tail) {
        u |= i;
        *o = GridPoint::new(deinterleave(i), deinterleave(i >> 1));
    }
    *union |= u;
}

/// Batch Z-order decode over the contiguous position range
/// `start..start + out.len()`; the caller validates the range.
pub fn zorder_point_range_chunk(side: u32, start: u64, out: &mut [GridPoint]) {
    let len = (side as u64) * (side as u64);
    if len <= 1 << 32 {
        let pairs = out.len() / 2;
        let (head, tail) = out.split_at_mut(pairs * 2);
        for (k, dst) in head.chunks_exact_mut(2).enumerate() {
            let i = start + 2 * k as u64;
            let (p0, p1) = zorder_point_pair(i | ((i + 1) << 32));
            dst[0] = p0;
            dst[1] = p1;
        }
        if let Some(o) = tail.first_mut() {
            let i = start + 2 * pairs as u64;
            *o = GridPoint::new(deinterleave(i), deinterleave(i >> 1));
        }
    } else {
        for (k, o) in out.iter_mut().enumerate() {
            let i = start + k as u64;
            *o = GridPoint::new(deinterleave(i), deinterleave(i >> 1));
        }
    }
}

// ---------------------------------------------------------------------------
// Retained scalar references (the pre-SWAR batch loops, verbatim).
// The differential tests pin every SWAR kernel bit-identical to these,
// and the benches report speedup against them.
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub fn hilbert_index_chunk_scalar(curve: &crate::HilbertCurve, pts: &[GridPoint], out: &mut [u64]) {
    let side = curve.side();
    for (o, &p) in out.iter_mut().zip(pts) {
        assert!(
            p.x < side && p.y < side,
            "{p} outside the {side}×{side} grid"
        );
        *o = curve.index_unchecked(p);
    }
}

#[doc(hidden)]
pub fn hilbert_point_chunk_scalar(
    curve: &crate::HilbertCurve,
    indices: &[u64],
    out: &mut [GridPoint],
) {
    let len = curve.len();
    for (o, &i) in out.iter_mut().zip(indices) {
        assert!(i < len, "curve position {i} out of range (len {len})");
        *o = curve.point_unchecked(i);
    }
}

#[doc(hidden)]
pub fn zorder_index_chunk_scalar(side: u32, pts: &[GridPoint], out: &mut [u64]) {
    let fused = side as u64 <= 1 << 16;
    for (o, &p) in out.iter_mut().zip(pts) {
        assert!(
            p.x < side && p.y < side,
            "{p} outside the {side}×{side} grid"
        );
        *o = if fused {
            interleave_xy(p.x, p.y)
        } else {
            interleave(p.x) | (interleave(p.y) << 1)
        };
    }
}

#[doc(hidden)]
pub fn zorder_point_chunk_scalar(side: u32, indices: &[u64], out: &mut [GridPoint]) {
    let len = (side as u64) * (side as u64);
    for (o, &i) in out.iter_mut().zip(indices) {
        assert!(i < len, "curve position {i} out of range (len {len})");
        *o = GridPoint::new(deinterleave(i), deinterleave(i >> 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HilbertCurve, ZOrderCurve};

    /// Degenerate batch sizes around the widest lane width (the paired
    /// Z-order decode uses 2-lane words; the `simd` feature uses 4).
    const DEGENERATE_N: [usize; 7] = [0, 1, 2, 3, 4, 5, 7];

    fn sample_indices(len: u64, n: usize) -> Vec<u64> {
        (0..n as u64).map(|k| (k * 2_654_435_761) % len).collect()
    }

    #[test]
    fn hilbert_index_chunk_matches_scalar_all_orders() {
        for order in 0..=10u32 {
            let side = 1u32 << order;
            let c = HilbertCurve::new(side);
            let n = (c.len() as usize).min(1 << 12);
            let pts: Vec<GridPoint> = sample_indices(c.len(), n)
                .iter()
                .map(|&i| c.point(i))
                .collect();
            let mut swar = vec![0u64; n];
            let mut scalar = vec![0u64; n];
            hilbert_index_chunk(side, &pts, &mut swar);
            hilbert_index_chunk_scalar(&c, &pts, &mut scalar);
            assert_eq!(swar, scalar, "order {order}");
        }
    }

    #[test]
    fn hilbert_point_chunk_matches_scalar_all_orders() {
        for order in 0..=10u32 {
            let side = 1u32 << order;
            let c = HilbertCurve::new(side);
            let n = (c.len() as usize).min(1 << 12);
            let idx = sample_indices(c.len(), n);
            let mut swar = vec![GridPoint::default(); n];
            let mut scalar = vec![GridPoint::default(); n];
            hilbert_point_chunk(side, &idx, &mut swar);
            hilbert_point_chunk_scalar(&c, &idx, &mut scalar);
            assert_eq!(swar, scalar, "order {order}");
        }
    }

    #[test]
    fn hilbert_range_chunk_matches_point_chunk() {
        let side = 32u32;
        let c = HilbertCurve::new(side);
        for n in DEGENERATE_N {
            for start in [0u64, 1, 100, c.len() - n as u64] {
                let idx: Vec<u64> = (start..start + n as u64).collect();
                let mut by_range = vec![GridPoint::default(); n];
                let mut by_index = vec![GridPoint::default(); n];
                hilbert_point_range_chunk(side, start, &mut by_range);
                hilbert_point_chunk(side, &idx, &mut by_index);
                assert_eq!(by_range, by_index, "start {start} n {n}");
            }
        }
    }

    #[test]
    fn zorder_chunks_match_scalar_including_odd_tails() {
        for side in [1u32, 2, 4, 16, 64, 1 << 10] {
            let c = ZOrderCurve::new(side);
            for n in DEGENERATE_N {
                let idx = sample_indices(c.len(), n);
                let pts: Vec<GridPoint> = idx.iter().map(|&i| c.point(i)).collect();

                let mut enc_swar = vec![0u64; n];
                let mut enc_ref = vec![0u64; n];
                zorder_index_chunk(side, &pts, &mut enc_swar);
                zorder_index_chunk_scalar(side, &pts, &mut enc_ref);
                assert_eq!(enc_swar, enc_ref, "encode side {side} n {n}");

                let mut dec_swar = vec![GridPoint::default(); n];
                let mut dec_ref = vec![GridPoint::default(); n];
                zorder_point_chunk(side, &idx, &mut dec_swar);
                zorder_point_chunk_scalar(side, &idx, &mut dec_ref);
                assert_eq!(dec_swar, dec_ref, "decode side {side} n {n}");

                // The range kernel's positions must stay on the curve.
                let rn = n.min(c.len() as usize);
                let mut rng_swar = vec![GridPoint::default(); rn];
                zorder_point_range_chunk(side, 0, &mut rng_swar);
                let contiguous: Vec<u64> = (0..rn as u64).collect();
                let mut rng_ref = vec![GridPoint::default(); rn];
                zorder_point_chunk_scalar(side, &contiguous, &mut rng_ref);
                assert_eq!(rng_swar, rng_ref, "range side {side} n {rn}");
            }
        }
    }

    #[test]
    fn hilbert_chunks_handle_degenerate_sizes() {
        for order in [0u32, 1, 3, 5, 8] {
            let side = 1u32 << order;
            let c = HilbertCurve::new(side);
            for n in DEGENERATE_N {
                let idx: Vec<u64> = (0..n as u64).map(|k| k % c.len()).collect();
                let pts: Vec<GridPoint> = idx.iter().map(|&i| c.point(i)).collect();

                let mut enc = vec![0u64; n];
                let mut enc_ref = vec![0u64; n];
                hilbert_index_chunk(side, &pts, &mut enc);
                hilbert_index_chunk_scalar(&c, &pts, &mut enc_ref);
                assert_eq!(enc, enc_ref, "order {order} n {n}");

                let mut dec = vec![GridPoint::default(); n];
                let mut dec_ref = vec![GridPoint::default(); n];
                hilbert_point_chunk(side, &idx, &mut dec);
                hilbert_point_chunk_scalar(&c, &idx, &mut dec_ref);
                assert_eq!(dec, dec_ref, "order {order} n {n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the 8×8 grid")]
    fn hilbert_index_chunk_panics_on_bad_point() {
        let pts = [GridPoint::new(1, 1), GridPoint::new(8, 0)];
        let mut out = [0u64; 2];
        hilbert_index_chunk(8, &pts, &mut out);
    }

    #[test]
    #[should_panic(expected = "curve position 64 out of range (len 64)")]
    fn hilbert_point_chunk_panics_on_bad_index() {
        let idx = [0u64, 64];
        let mut out = [GridPoint::default(); 2];
        hilbert_point_chunk(8, &idx, &mut out);
    }

    #[test]
    #[should_panic(expected = "outside the 4×4 grid")]
    fn zorder_index_chunk_panics_on_bad_point() {
        let pts = [GridPoint::new(0, 0), GridPoint::new(0, 4)];
        let mut out = [0u64; 2];
        zorder_index_chunk(4, &pts, &mut out);
    }

    #[test]
    #[should_panic(expected = "curve position 16 out of range (len 16)")]
    fn zorder_point_chunk_panics_on_bad_index() {
        let idx = [16u64];
        let mut out = [GridPoint::default(); 1];
        zorder_point_chunk(4, &idx, &mut out);
    }

    #[test]
    fn packed_tables_agree_with_sources() {
        for s in 0..4usize {
            for cell in 0..1024usize {
                assert_eq!((POINT5P[cell] >> (s * 16)) as u16 & 0xFFF, POINT5[s][cell]);
                assert_eq!((INDEX5P[cell] >> (s * 16)) as u16 & 0xFFF, INDEX5[s][cell]);
            }
            for cell in 0..256usize {
                assert_eq!((POINT4P[cell] >> (s * 16)) as u16 & 0x3FF, POINT4[s][cell]);
                assert_eq!((INDEX4P[cell] >> (s * 16)) as u16 & 0x3FF, INDEX4[s][cell]);
            }
            for cell in 0..16usize {
                assert_eq!((POINT2P[cell] >> (s * 8)) as u8 & 0x3F, POINT2[s][cell]);
                assert_eq!((INDEX2P[cell] >> (s * 8)) as u8 & 0x3F, INDEX2[s][cell]);
            }
        }
    }
}
