//! Space-filling curves and grid geometry for the spatial computer model.
//!
//! The spatial computer model places processors on a `√n × √n` grid and
//! charges a message from `(i, j)` to `(x, y)` an *energy* equal to the
//! Manhattan distance `|x−i| + |y−j|`. Tree layouts in this workspace map a
//! linear vertex order onto the grid with a space-filling curve; the
//! locality of that curve (its *distance-bound* constant, §III-B of the
//! paper) determines the constant factors of every energy bound.
//!
//! This crate provides:
//!
//! - [`GridPoint`] and [`manhattan`]: the grid geometry shared by the whole
//!   workspace.
//! - [`Curve`]: the interface `index ↔ coordinate` for discrete
//!   space-filling curves on a square grid.
//! - Curve implementations: [`hilbert::HilbertCurve`] (distance-bound,
//!   `α = 3`), [`zorder::ZOrderCurve`] (*not* distance-bound but still
//!   energy-bound for light-first layouts, Theorem 2),
//!   [`peano::PeanoCurve`] (distance-bound, `α = √(10⅔)`), and the
//!   negative controls [`simple::RowMajorCurve`] /
//!   [`simple::SerpentineCurve`].
//! - [`locality`]: empirical measurement of distance-bound constants and
//!   the alignment property (Lemma 4).
//! - [`zorder`] diagonal analysis: the `Ed` term of Lemma 3 and the
//!   longest-diagonal counting of Lemmas 5–6 (Fig. 2).
//! - [`swar`]: the SWAR batch kernels behind `point_batch`/`index_batch`
//!   (state-lane-packed Hilbert walks, pair-packed Morton decode), and
//!   [`thresholds`]: measured sequential↔parallel crossovers generated
//!   by `experiments -- calibrate-thresholds`.

#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod geom;
pub mod hilbert;
pub mod locality;
pub mod moore;
pub mod peano;
#[doc(hidden)]
pub mod reference;
pub mod simple;
#[doc(hidden)]
pub mod swar;
pub mod thresholds;
pub mod zorder;

pub use geom::{manhattan, GridPoint};
pub use hilbert::HilbertCurve;
pub use moore::MooreCurve;
pub use peano::PeanoCurve;
pub use simple::{RowMajorCurve, SerpentineCurve};
pub use zorder::ZOrderCurve;

/// A discrete space-filling curve over a `side × side` grid.
///
/// A curve is a bijection between `0..side²` ("curve positions") and grid
/// coordinates. The *i-th processor* of the paper is the processor at
/// [`Curve::point`]`(i)`.
pub trait Curve {
    /// Side length of the square grid this curve instance covers.
    fn side(&self) -> u32;

    /// Number of grid cells covered (`side²`).
    fn len(&self) -> u64 {
        (self.side() as u64) * (self.side() as u64)
    }

    /// Returns `true` when the curve covers no cells (side 0).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maps a curve position `index < len()` to its grid coordinate.
    fn point(&self, index: u64) -> GridPoint;

    /// Maps a grid coordinate back to its curve position (inverse of
    /// [`Curve::point`]).
    fn index(&self, p: GridPoint) -> u64;

    /// Manhattan distance between the `i`-th and `j`-th positions: the
    /// energy of one message between them in the spatial computer model.
    fn dist(&self, i: u64, j: u64) -> u64 {
        manhattan(self.point(i), self.point(j))
    }

    /// Batch [`Curve::point`]: fills `out[k] = point(indices[k])`.
    ///
    /// The default maps the scalar transform; the hot curves (Hilbert,
    /// Z-order, and [`AnyCurve`]) override it with branchless inner
    /// loops split across threads for large batches.
    fn point_batch(&self, indices: &[u64], out: &mut [GridPoint]) {
        assert_eq!(indices.len(), out.len(), "batch size mismatch");
        for (o, &i) in out.iter_mut().zip(indices) {
            *o = self.point(i);
        }
    }

    /// Batch [`Curve::index`]: fills `out[k] = index(points[k])`.
    fn index_batch(&self, points: &[GridPoint], out: &mut [u64]) {
        assert_eq!(points.len(), out.len(), "batch size mismatch");
        for (o, &p) in out.iter_mut().zip(points) {
            *o = self.index(p);
        }
    }

    /// Batch [`Curve::point`] over the contiguous position range
    /// `start..start + out.len()` — the layout/machine construction
    /// pattern, with no index buffer to materialize.
    fn point_range_batch(&self, start: u64, out: &mut [GridPoint]) {
        let end = start
            .checked_add(out.len() as u64)
            .expect("curve position range overflows u64");
        assert!(end <= self.len(), "range end {end} out of curve range");
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.point(start + k as u64);
        }
    }

    /// Convenience [`Curve::point_range_batch`] allocating the output:
    /// the grid coordinates of every position in `0..len()`.
    fn all_points(&self) -> Vec<GridPoint> {
        let mut out = vec![GridPoint::default(); self.len() as usize];
        self.point_range_batch(0, &mut out);
        out
    }
}

/// Batches at least this large are split across threads by the
/// parallel `point_batch`/`index_batch` overrides; smaller ones stay on
/// the calling thread (thread spawn costs more than it saves — the
/// "measure before parallelizing" lesson).
///
/// This is the pre-calibration analytic fallback; the hot batch paths
/// now consult the measured [`thresholds`] instead.
pub const PAR_BATCH_MIN: usize = 1 << 14;

/// The measured cost model of one parallelizable kernel, fitted by
/// `experiments -- calibrate-thresholds` from real sweeps of the
/// sequential loop and the `rayon::scope`-forked version: a run over
/// `n` items costs `c·n` sequentially and `T·F + c·n/T` split across
/// `T` workers, where `F` is the fixed per-spawn overhead and `c` the
/// per-item cost (the same `F/b + c` shape that backs
/// `MIN_COALESCED_BATCH` in the serve tier).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelFit {
    /// Kernel name as reported by the calibration sweep.
    pub name: &'static str,
    /// Fixed overhead per spawned task, in nanoseconds (`F`).
    pub fixed_overhead_ns: f64,
    /// Marginal sequential cost per item, in nanoseconds (`c`).
    pub per_item_ns: f64,
    /// Worker count the fit was measured with (1 means the calibration
    /// box could not fork and the fit carries spawn overhead only).
    pub calibrated_threads: usize,
}

impl KernelFit {
    /// Smallest batch size where forking beats staying sequential on
    /// the *current* worker count: `T·F + c·n/T < c·n` solves to
    /// `n > T²·F / (c·(T−1))`. Returns `usize::MAX` when there is only
    /// one worker (parallelism can never win), which the `par_*`
    /// helpers already treat as "stay sequential".
    pub fn min_par_items(&self) -> usize {
        let t = rayon::current_num_threads();
        if t <= 1 || self.per_item_ns <= 0.0 {
            return usize::MAX;
        }
        let t = t as f64;
        let crossover = self.fixed_overhead_ns * t * t / (self.per_item_ns * (t - 1.0));
        if !crossover.is_finite() || crossover >= usize::MAX as f64 {
            return usize::MAX;
        }
        (crossover.ceil() as usize).max(1)
    }
}

/// Fills `out` by handing contiguous chunks (with their start offsets)
/// to `fill` on worker threads; sequential below `min_chunk`. Built on
/// `rayon::scope` only, so it works with both the in-repo rayon shim
/// and the real crate.
pub fn par_fill<T: Send, F: Fn(usize, &mut [T]) + Sync>(out: &mut [T], min_chunk: usize, fill: F) {
    let threads = rayon::current_num_threads();
    if threads <= 1 || out.len() <= min_chunk {
        fill(0, out);
        return;
    }
    let chunk = out.len().div_ceil(threads).max(min_chunk);
    rayon::scope(|s| {
        for (ci, part) in out.chunks_mut(chunk).enumerate() {
            let fill = &fill;
            s.spawn(move |_| fill(ci * chunk, part));
        }
    });
}

/// Runs `f` over matching chunks of `input` and `out` on worker
/// threads; sequential below `min_chunk`. The map-shaped sibling of
/// [`par_fill`] used by the batch curve transforms.
pub fn par_map_fill<T: Sync, U: Send, F: Fn(&[T], &mut [U]) + Sync>(
    input: &[T],
    out: &mut [U],
    min_chunk: usize,
    f: F,
) {
    assert_eq!(input.len(), out.len(), "batch size mismatch");
    let threads = rayon::current_num_threads();
    if threads <= 1 || input.len() <= min_chunk {
        f(input, out);
        return;
    }
    let chunk = input.len().div_ceil(threads).max(min_chunk);
    rayon::scope(|s| {
        for (part, opart) in input.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            s.spawn(move |_| f(part, opart));
        }
    });
}

/// Chunked parallel scan over a slice: `f(offset, chunk)` runs on
/// worker threads; sequential below `min_chunk`.
pub fn par_scan<T: Sync, F: Fn(usize, &[T]) + Sync>(items: &[T], min_chunk: usize, f: F) {
    let threads = rayon::current_num_threads();
    if threads <= 1 || items.len() <= min_chunk {
        f(0, items);
        return;
    }
    let chunk = items.len().div_ceil(threads).max(min_chunk);
    rayon::scope(|s| {
        for (ci, part) in items.chunks(chunk).enumerate() {
            let f = &f;
            s.spawn(move |_| f(ci * chunk, part));
        }
    });
}

/// The space-filling curves shipped with this crate.
///
/// `Hilbert`, `Peano` are distance-bound (Theorem 1 applies directly);
/// `ZOrder` is energy-bound despite not being distance-bound (Theorem 2);
/// `RowMajor` and `Serpentine` are *not* energy-bound and serve as
/// negative controls in the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CurveKind {
    /// Hilbert curve; distance-bound with `α = 3`.
    Hilbert,
    /// Moore curve (closed Hilbert, the H-index family); distance-bound
    /// with `α ≤ 3` (the canonical H-index orientation achieves `2√2`).
    Moore,
    /// Z-order (Morton) curve; aligned but not distance-bound.
    ZOrder,
    /// Peano curve (base 3); distance-bound with `α = √(10 + 2/3)`.
    Peano,
    /// Plain row-major order; pathological locality (negative control).
    RowMajor,
    /// Boustrophedon row order; adjacent steps but not distance-bound.
    Serpentine,
}

impl CurveKind {
    /// All curve kinds, in a stable order (useful for experiment sweeps).
    pub const ALL: [CurveKind; 6] = [
        CurveKind::Hilbert,
        CurveKind::Moore,
        CurveKind::ZOrder,
        CurveKind::Peano,
        CurveKind::RowMajor,
        CurveKind::Serpentine,
    ];

    /// The curve kinds that satisfy the distance-bound property of §III-B.
    pub const DISTANCE_BOUND: [CurveKind; 3] =
        [CurveKind::Hilbert, CurveKind::Moore, CurveKind::Peano];

    /// The curve kinds that are *energy-bound* for light-first layouts
    /// (Theorems 1–2): the three distance-bound curves plus Z-order.
    /// E1-style experiment tables and the `bench-json-layout` scenario
    /// sweep cover exactly these four.
    pub const ENERGY_BOUND: [CurveKind; 4] = [
        CurveKind::Hilbert,
        CurveKind::Moore,
        CurveKind::ZOrder,
        CurveKind::Peano,
    ];

    /// Human-readable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            CurveKind::Hilbert => "hilbert",
            CurveKind::Moore => "moore",
            CurveKind::ZOrder => "zorder",
            CurveKind::Peano => "peano",
            CurveKind::RowMajor => "rowmajor",
            CurveKind::Serpentine => "serpentine",
        }
    }

    /// Whether the curve satisfies the distance-bound property
    /// (`dist(i, i+j) ∈ O(√j)`).
    pub fn is_distance_bound(self) -> bool {
        matches!(
            self,
            CurveKind::Hilbert | CurveKind::Moore | CurveKind::Peano
        )
    }

    /// Proven distance-bound constant `α` where known
    /// (`dist(i, i+j) ≤ α·√j + o(√j)`); `None` for unbounded curves.
    pub fn alpha(self) -> Option<f64> {
        match self {
            CurveKind::Hilbert => Some(3.0),
            // Conservative: each quadrant is a Hilbert curve; the
            // canonical H-index orientation is proven at 2√2.
            CurveKind::Moore => Some(3.0),
            CurveKind::Peano => Some((10.0 + 2.0 / 3.0f64).sqrt()),
            _ => None,
        }
    }

    /// Smallest legal side length with `side² ≥ capacity` for this curve
    /// family (power of two for Hilbert/Z-order, power of three for
    /// Peano, exact ceiling square root otherwise). Always at least 1,
    /// so a zero-capacity request yields the 1-cell curve for every
    /// family — the fractal families round up anyway; the simple
    /// families would otherwise reject side 0 and make the degenerate
    /// empty layout curve-dependent.
    pub fn side_for_capacity(self, capacity: u64) -> u32 {
        let min_side = ceil_sqrt(capacity).max(1);
        match self {
            CurveKind::Hilbert | CurveKind::Moore | CurveKind::ZOrder => {
                min_side.next_power_of_two()
            }
            CurveKind::Peano => next_power_of_three(min_side),
            CurveKind::RowMajor | CurveKind::Serpentine => min_side,
        }
    }

    /// Builds the curve instance of this kind that covers at least
    /// `capacity` cells.
    pub fn for_capacity(self, capacity: u64) -> AnyCurve {
        let side = self.side_for_capacity(capacity);
        self.with_side(side)
    }

    /// Builds the curve with an explicit side length.
    ///
    /// # Panics
    /// Panics when `side` is not legal for the family (see
    /// [`CurveKind::side_for_capacity`]).
    pub fn with_side(self, side: u32) -> AnyCurve {
        match self {
            CurveKind::Hilbert => AnyCurve::Hilbert(HilbertCurve::new(side)),
            CurveKind::Moore => AnyCurve::Moore(MooreCurve::new(side)),
            CurveKind::ZOrder => AnyCurve::ZOrder(ZOrderCurve::new(side)),
            CurveKind::Peano => AnyCurve::Peano(PeanoCurve::new(side)),
            CurveKind::RowMajor => AnyCurve::RowMajor(RowMajorCurve::new(side)),
            CurveKind::Serpentine => AnyCurve::Serpentine(SerpentineCurve::new(side)),
        }
    }
}

impl std::fmt::Display for CurveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Enum-dispatched curve: avoids boxing in hot per-message paths while
/// still letting experiment code sweep over [`CurveKind::ALL`].
#[derive(Debug, Clone)]
pub enum AnyCurve {
    /// See [`HilbertCurve`].
    Hilbert(HilbertCurve),
    /// See [`MooreCurve`].
    Moore(MooreCurve),
    /// See [`ZOrderCurve`].
    ZOrder(ZOrderCurve),
    /// See [`PeanoCurve`].
    Peano(PeanoCurve),
    /// See [`RowMajorCurve`].
    RowMajor(RowMajorCurve),
    /// See [`SerpentineCurve`].
    Serpentine(SerpentineCurve),
}

impl AnyCurve {
    /// The [`CurveKind`] of this instance.
    pub fn kind(&self) -> CurveKind {
        match self {
            AnyCurve::Hilbert(_) => CurveKind::Hilbert,
            AnyCurve::Moore(_) => CurveKind::Moore,
            AnyCurve::ZOrder(_) => CurveKind::ZOrder,
            AnyCurve::Peano(_) => CurveKind::Peano,
            AnyCurve::RowMajor(_) => CurveKind::RowMajor,
            AnyCurve::Serpentine(_) => CurveKind::Serpentine,
        }
    }
}

impl Curve for AnyCurve {
    fn side(&self) -> u32 {
        match self {
            AnyCurve::Hilbert(c) => c.side(),
            AnyCurve::Moore(c) => c.side(),
            AnyCurve::ZOrder(c) => c.side(),
            AnyCurve::Peano(c) => c.side(),
            AnyCurve::RowMajor(c) => c.side(),
            AnyCurve::Serpentine(c) => c.side(),
        }
    }

    fn point(&self, index: u64) -> GridPoint {
        match self {
            AnyCurve::Hilbert(c) => c.point(index),
            AnyCurve::Moore(c) => c.point(index),
            AnyCurve::ZOrder(c) => c.point(index),
            AnyCurve::Peano(c) => c.point(index),
            AnyCurve::RowMajor(c) => c.point(index),
            AnyCurve::Serpentine(c) => c.point(index),
        }
    }

    fn index(&self, p: GridPoint) -> u64 {
        match self {
            AnyCurve::Hilbert(c) => c.index(p),
            AnyCurve::Moore(c) => c.index(p),
            AnyCurve::ZOrder(c) => c.index(p),
            AnyCurve::Peano(c) => c.index(p),
            AnyCurve::RowMajor(c) => c.index(p),
            AnyCurve::Serpentine(c) => c.index(p),
        }
    }

    // Batch calls dispatch the enum once per batch instead of once per
    // element, then run the concrete curve's (possibly parallel)
    // override.
    fn point_batch(&self, indices: &[u64], out: &mut [GridPoint]) {
        match self {
            AnyCurve::Hilbert(c) => c.point_batch(indices, out),
            AnyCurve::Moore(c) => c.point_batch(indices, out),
            AnyCurve::ZOrder(c) => c.point_batch(indices, out),
            AnyCurve::Peano(c) => c.point_batch(indices, out),
            AnyCurve::RowMajor(c) => c.point_batch(indices, out),
            AnyCurve::Serpentine(c) => c.point_batch(indices, out),
        }
    }

    fn index_batch(&self, points: &[GridPoint], out: &mut [u64]) {
        match self {
            AnyCurve::Hilbert(c) => c.index_batch(points, out),
            AnyCurve::Moore(c) => c.index_batch(points, out),
            AnyCurve::ZOrder(c) => c.index_batch(points, out),
            AnyCurve::Peano(c) => c.index_batch(points, out),
            AnyCurve::RowMajor(c) => c.index_batch(points, out),
            AnyCurve::Serpentine(c) => c.index_batch(points, out),
        }
    }

    fn point_range_batch(&self, start: u64, out: &mut [GridPoint]) {
        match self {
            AnyCurve::Hilbert(c) => c.point_range_batch(start, out),
            AnyCurve::Moore(c) => c.point_range_batch(start, out),
            AnyCurve::ZOrder(c) => c.point_range_batch(start, out),
            AnyCurve::Peano(c) => c.point_range_batch(start, out),
            AnyCurve::RowMajor(c) => c.point_range_batch(start, out),
            AnyCurve::Serpentine(c) => c.point_range_batch(start, out),
        }
    }
}

/// Integer ceiling square root: smallest `s` with `s² ≥ v`.
pub fn ceil_sqrt(v: u64) -> u32 {
    if v == 0 {
        return 0;
    }
    let mut s = (v as f64).sqrt() as u64;
    while s * s < v {
        s += 1;
    }
    while s > 1 && (s - 1) * (s - 1) >= v {
        s -= 1;
    }
    s as u32
}

/// Smallest power of three `≥ v` (`v = 0, 1 → 1`).
pub fn next_power_of_three(v: u32) -> u32 {
    let mut p: u32 = 1;
    while p < v {
        p = p.checked_mul(3).expect("power of three overflows u32");
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_sqrt_exact_and_between() {
        assert_eq!(ceil_sqrt(0), 0);
        assert_eq!(ceil_sqrt(1), 1);
        assert_eq!(ceil_sqrt(2), 2);
        assert_eq!(ceil_sqrt(4), 2);
        assert_eq!(ceil_sqrt(5), 3);
        assert_eq!(ceil_sqrt(9), 3);
        assert_eq!(ceil_sqrt(10), 4);
        assert_eq!(ceil_sqrt(1 << 20), 1 << 10);
        assert_eq!(ceil_sqrt((1 << 20) + 1), (1 << 10) + 1);
    }

    #[test]
    fn power_of_three_progression() {
        assert_eq!(next_power_of_three(0), 1);
        assert_eq!(next_power_of_three(1), 1);
        assert_eq!(next_power_of_three(2), 3);
        assert_eq!(next_power_of_three(3), 3);
        assert_eq!(next_power_of_three(4), 9);
        assert_eq!(next_power_of_three(10), 27);
        assert_eq!(next_power_of_three(27), 27);
        assert_eq!(next_power_of_three(28), 81);
    }

    #[test]
    fn side_for_capacity_respects_family() {
        assert_eq!(CurveKind::Hilbert.side_for_capacity(17), 8);
        assert_eq!(CurveKind::ZOrder.side_for_capacity(16), 4);
        assert_eq!(CurveKind::Peano.side_for_capacity(10), 9);
        assert_eq!(CurveKind::RowMajor.side_for_capacity(10), 4);
        assert_eq!(CurveKind::Serpentine.side_for_capacity(9), 3);
    }

    #[test]
    fn for_capacity_covers_requested_cells() {
        for kind in CurveKind::ALL {
            for cap in [1u64, 5, 64, 100, 1000] {
                let c = kind.for_capacity(cap);
                assert!(c.len() >= cap, "{kind} capacity {cap} got {}", c.len());
            }
        }
    }

    #[test]
    fn energy_bound_is_distance_bound_plus_zorder() {
        for kind in CurveKind::DISTANCE_BOUND {
            assert!(CurveKind::ENERGY_BOUND.contains(&kind), "{kind}");
        }
        assert!(CurveKind::ENERGY_BOUND.contains(&CurveKind::ZOrder));
        assert!(!CurveKind::ENERGY_BOUND.contains(&CurveKind::RowMajor));
        assert!(!CurveKind::ENERGY_BOUND.contains(&CurveKind::Serpentine));
    }

    #[test]
    fn alpha_only_for_distance_bound() {
        for kind in CurveKind::ALL {
            assert_eq!(kind.alpha().is_some(), kind.is_distance_bound());
        }
    }

    #[test]
    fn kind_roundtrip_through_anycurve() {
        for kind in CurveKind::ALL {
            assert_eq!(kind.for_capacity(50).kind(), kind);
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(CurveKind::Hilbert.to_string(), "hilbert");
        assert_eq!(CurveKind::ZOrder.to_string(), "zorder");
    }
}
