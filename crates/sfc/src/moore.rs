//! The Moore curve: the closed (cyclic) Hilbert variant.
//!
//! The Moore curve of order `k` stitches four Hilbert curves of order
//! `k−1` into a closed loop: the upper two quadrants are traversed left
//! to right by vertically-flipped Hilbert curves, the lower two right
//! to left by horizontally-flipped ones, and the last cell is adjacent
//! to the first. This is the curve behind the *H-index* mesh-indexing
//! the paper cites with `α = 2√2` (§III-B); being closed also makes it
//! attractive for ring-style collectives.

use crate::geom::GridPoint;
use crate::hilbert::HilbertCurve;
use crate::Curve;

/// Moore curve over a `side × side` grid (`side` a power of two).
#[derive(Debug, Clone)]
pub struct MooreCurve {
    side: u32,
    /// Hilbert curve of the quadrants (`None` for the 1×1 grid).
    quadrant: Option<HilbertCurve>,
}

impl MooreCurve {
    /// Creates the Moore curve for the given side length.
    ///
    /// # Panics
    /// Panics when `side` is zero or not a power of two.
    pub fn new(side: u32) -> Self {
        assert!(side > 0, "Moore curve needs a positive side");
        assert!(
            side.is_power_of_two(),
            "Moore curve side must be a power of two, got {side}"
        );
        MooreCurve {
            side,
            quadrant: (side > 1).then(|| HilbertCurve::new(side / 2)),
        }
    }
}

impl Curve for MooreCurve {
    fn side(&self) -> u32 {
        self.side
    }

    fn point(&self, index: u64) -> GridPoint {
        debug_assert!(index < self.len(), "index {index} out of curve range");
        let Some(h) = &self.quadrant else {
            return GridPoint::new(0, 0);
        };
        let s = (self.side / 2) as u64;
        let cells = s * s;
        let (q, t) = (index / cells, index % cells);
        let p = h.point(t);
        let (hx, hy) = (p.x as u64, p.y as u64);
        // Quadrant cycle: UL → UR → LR → LL, upper halves vertically
        // flipped (bottom-left → bottom-right), lower halves
        // horizontally flipped (top-right → top-left).
        let (x, y) = match q {
            0 => (hx, s - 1 - hy),         // UL
            1 => (s + hx, s - 1 - hy),     // UR
            2 => (2 * s - 1 - hx, s + hy), // LR
            _ => (s - 1 - hx, s + hy),     // LL
        };
        GridPoint::new(x as u32, y as u32)
    }

    fn index(&self, p: GridPoint) -> u64 {
        debug_assert!(p.x < self.side && p.y < self.side, "{p} outside grid");
        let Some(h) = &self.quadrant else {
            return 0;
        };
        let s = self.side as u64 / 2;
        let (x, y) = (p.x as u64, p.y as u64);
        let (q, hx, hy) = match (x >= s, y >= s) {
            (false, false) => (0, x, s - 1 - y),
            (true, false) => (1, x - s, s - 1 - y),
            (true, true) => (2, 2 * s - 1 - x, y - s),
            (false, true) => (3, s - 1 - x, y - s),
        };
        q * s * s + h.index(GridPoint::new(hx as u32, hy as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::manhattan;
    use crate::locality::alpha_estimate;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = MooreCurve::new(6);
    }

    #[test]
    fn two_by_two_is_a_cycle() {
        let c = MooreCurve::new(2);
        let pts: Vec<GridPoint> = (0..4).map(|i| c.point(i)).collect();
        assert_eq!(
            pts,
            vec![
                GridPoint::new(0, 0),
                GridPoint::new(1, 0),
                GridPoint::new(1, 1),
                GridPoint::new(0, 1),
            ]
        );
    }

    #[test]
    fn consecutive_positions_adjacent_and_closed() {
        for side in [2u32, 4, 8, 16, 32] {
            let c = MooreCurve::new(side);
            for i in 1..c.len() {
                assert!(
                    c.point(i - 1).is_adjacent(c.point(i)),
                    "side {side}: step {i} not adjacent: {} → {}",
                    c.point(i - 1),
                    c.point(i)
                );
            }
            // Closure: the loop property that distinguishes Moore from
            // Hilbert.
            assert!(
                c.point(c.len() - 1).is_adjacent(c.point(0)),
                "side {side}: curve is not closed"
            );
        }
    }

    #[test]
    fn bijective_roundtrip() {
        for side in [1u32, 2, 4, 16] {
            let c = MooreCurve::new(side);
            let mut seen = vec![false; c.len() as usize];
            for i in 0..c.len() {
                let p = c.point(i);
                assert_eq!(c.index(p), i, "roundtrip failed at {i} (side {side})");
                let cell = (p.y * side + p.x) as usize;
                assert!(!seen[cell], "cell {p} visited twice");
                seen[cell] = true;
            }
        }
    }

    #[test]
    fn distance_bound_close_to_hilbert() {
        // The H-index (a Moore-curve indexing) achieves α = 2√2; our
        // quadrant orientation may not be the optimal one, but it must
        // stay within the Hilbert constant 3 plus small-j slack.
        let a = alpha_estimate(&MooreCurve::new(64), 1);
        assert!(a <= 3.1, "Moore α measured {a}");
    }

    #[test]
    fn wraparound_distance_is_short() {
        // Unlike Hilbert (endpoints on opposite top corners at distance
        // side−1), Moore's first and last cells touch.
        let side = 64;
        let m = MooreCurve::new(side);
        assert_eq!(manhattan(m.point(0), m.point(m.len() - 1)), 1);
        let h = HilbertCurve::new(side);
        assert_eq!(manhattan(h.point(0), h.point(h.len() - 1)), side as u64 - 1);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(side_log in 1u32..7, raw in 0u64..u64::MAX) {
            let c = MooreCurve::new(1 << side_log);
            let idx = raw % c.len();
            prop_assert_eq!(c.index(c.point(idx)), idx);
        }

        #[test]
        fn prop_adjacent(raw in 0u64..u64::MAX) {
            let c = MooreCurve::new(32);
            let idx = raw % c.len();
            let next = (idx + 1) % c.len(); // adjacency incl. wraparound
            prop_assert_eq!(manhattan(c.point(idx), c.point(next)), 1);
        }
    }
}
