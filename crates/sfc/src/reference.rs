//! Reference scalar curve transforms, retained for benchmarking and
//! differential testing of the optimized implementations.
//!
//! These are the pre-optimization code paths: the branchy
//! rotate-and-swap Hilbert loop (one quadrant level per iteration, with
//! data-dependent branches) and the bit-at-a-time Morton interleave.
//! The criterion benches (`curve_locality.rs`) and the
//! `BENCH_sfc_treefix.json` baseline compare them against the
//! lookup-table / magic-mask hot paths, and the property tests assert
//! exact agreement on every index.
//!
//! Not part of the public API surface; signatures take raw `side`
//! values so the reference paths cannot accidentally pick up the
//! optimized precomputation.
#![doc(hidden)]

use crate::geom::GridPoint;

/// Seed implementation of `HilbertCurve::point`: LSB-first loop, one
/// 2-bit quadrant level per iteration, branchy rotation.
pub fn hilbert_point_scalar(side: u32, index: u64) -> GridPoint {
    let mut t = index;
    let (mut x, mut y) = (0u64, 0u64);
    let mut s = 1u64;
    let n = side as u64;
    while s < n {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        rotate(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    GridPoint::new(x as u32, y as u32)
}

/// Seed implementation of `HilbertCurve::index` (inverse of
/// [`hilbert_point_scalar`]).
pub fn hilbert_index_scalar(side: u32, p: GridPoint) -> u64 {
    let (mut x, mut y) = (p.x as u64, p.y as u64);
    let mut d = 0u64;
    let mut s = (side as u64) / 2;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        rotate(s, &mut x, &mut y, rx, ry);
        s /= 2;
    }
    d
}

/// One step of the Hilbert quadrant rotation/reflection (the branchy
/// form the optimized lookup tables replace).
#[inline]
fn rotate(s: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
    if ry == 0 {
        if rx == 1 {
            *x = s.wrapping_sub(1).wrapping_sub(*x);
            *y = s.wrapping_sub(1).wrapping_sub(*y);
        }
        std::mem::swap(x, y);
    }
}

/// Bit-at-a-time Morton decode: the scalar baseline the magic-mask
/// deinterleave is measured against.
pub fn zorder_point_scalar(side: u32, index: u64) -> GridPoint {
    let bits = side.max(1).trailing_zeros();
    let (mut x, mut y) = (0u32, 0u32);
    for b in 0..bits {
        x |= (((index >> (2 * b)) & 1) as u32) << b;
        y |= (((index >> (2 * b + 1)) & 1) as u32) << b;
    }
    GridPoint::new(x, y)
}

/// Bit-at-a-time Morton encode (inverse of [`zorder_point_scalar`]).
pub fn zorder_index_scalar(side: u32, p: GridPoint) -> u64 {
    let bits = side.max(1).trailing_zeros();
    let mut d = 0u64;
    for b in 0..bits {
        d |= (((p.x >> b) & 1) as u64) << (2 * b);
        d |= (((p.y >> b) & 1) as u64) << (2 * b + 1);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_hilbert_roundtrips() {
        for order in 0..=6u32 {
            let side = 1u32 << order;
            for i in 0..(side as u64 * side as u64) {
                let p = hilbert_point_scalar(side, i);
                assert_eq!(hilbert_index_scalar(side, p), i, "order {order} i {i}");
            }
        }
    }

    #[test]
    fn scalar_zorder_matches_figure2() {
        // Fig. 2 layout on the 4×4 grid.
        assert_eq!(zorder_point_scalar(4, 6), GridPoint::new(2, 1));
        assert_eq!(zorder_index_scalar(4, GridPoint::new(2, 1)), 6);
        for i in 0..16 {
            let p = zorder_point_scalar(4, i);
            assert_eq!(zorder_index_scalar(4, p), i);
        }
    }
}
