//! The Z-order (Morton) curve and its diagonal analysis.
//!
//! The Z-order curve visits the four quadrants of the grid recursively in
//! the order upper-left, upper-right, lower-left, lower-right (Fig. 2 of
//! the paper). Unlike the Hilbert curve it is **not** distance-bound:
//! consecutive positions can be `Θ(√n)` apart when the curve jumps across
//! a *diagonal* between two power-of-two-aligned subgrids. Theorem 2
//! nevertheless shows that Z-light-first layouts are energy-bound, by
//! splitting each message's energy into a bounded part `Eb` (Lemma 4: the
//! curve is *aligned*) and a diagonal part `Ed` whose total is `O(n)`
//! because each diagonal can be the longest one only a logarithmic number
//! of times (Lemmas 5–6). This module exposes the machinery needed to
//! measure both parts.

use crate::geom::{manhattan, GridPoint};
use crate::Curve;

/// Z-order (Morton) curve over a `side × side` grid (`side` a power of 2).
#[derive(Debug, Clone)]
pub struct ZOrderCurve {
    side: u32,
}

impl ZOrderCurve {
    /// Creates the Z-order curve for the given side length.
    ///
    /// # Panics
    /// Panics when `side` is zero or not a power of two.
    pub fn new(side: u32) -> Self {
        assert!(side > 0, "Z-order curve needs a positive side");
        assert!(
            side.is_power_of_two(),
            "Z-order curve side must be a power of two, got {side}"
        );
        ZOrderCurve { side }
    }
}

impl Curve for ZOrderCurve {
    fn side(&self) -> u32 {
        self.side
    }

    /// Magic-mask Morton decode (branchless).
    ///
    /// # Panics
    /// Panics when `index ≥ len()` (a real bounds check in release
    /// builds, matching [`crate::HilbertCurve`]).
    fn point(&self, index: u64) -> GridPoint {
        assert!(
            index < self.len(),
            "curve position {index} out of range (len {})",
            self.len()
        );
        GridPoint::new(deinterleave(index), deinterleave(index >> 1))
    }

    /// Magic-mask Morton encode.
    ///
    /// # Panics
    /// Panics when `p` lies outside the grid.
    fn index(&self, p: GridPoint) -> u64 {
        assert!(
            p.x < self.side && p.y < self.side,
            "{p} outside the {0}×{0} grid",
            self.side
        );
        interleave(p.x) | (interleave(p.y) << 1)
    }

    fn point_batch(&self, indices: &[u64], out: &mut [GridPoint]) {
        assert_eq!(indices.len(), out.len(), "batch size mismatch");
        let side = self.side;
        let min_chunk = crate::thresholds::SFC_FILL.min_par_items();
        crate::par_map_fill(indices, out, min_chunk, |idx, dst| {
            crate::swar::zorder_point_chunk(side, idx, dst);
        });
    }

    fn index_batch(&self, points: &[GridPoint], out: &mut [u64]) {
        assert_eq!(points.len(), out.len(), "batch size mismatch");
        let side = self.side;
        let min_chunk = crate::thresholds::SFC_FILL.min_par_items();
        crate::par_map_fill(points, out, min_chunk, |pts, dst| {
            crate::swar::zorder_index_chunk(side, pts, dst);
        });
    }

    fn point_range_batch(&self, start: u64, out: &mut [GridPoint]) {
        let end = start
            .checked_add(out.len() as u64)
            .expect("curve position range overflows u64");
        assert!(end <= self.len(), "range end {end} out of curve range");
        let side = self.side;
        let min_chunk = crate::thresholds::SFC_FILL.min_par_items();
        crate::par_fill(out, min_chunk, |offset, dst| {
            crate::swar::zorder_point_range_chunk(side, start + offset as u64, dst);
        });
    }
}

/// Fused encode of both coordinates: one magic-mask pipeline over a
/// single `u64` holding `y` in the high half and `x` in the low half,
/// halving the bit-twiddling work of two separate [`interleave`] calls.
#[inline]
pub(crate) fn interleave_xy(x: u32, y: u32) -> u64 {
    let mut z = ((y as u64) << 32) | x as u64;
    z = (z | (z << 8)) & 0x00FF_00FF_00FF_00FF;
    z = (z | (z << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    z = (z | (z << 2)) & 0x3333_3333_3333_3333;
    z = (z | (z << 1)) & 0x5555_5555_5555_5555;
    (z & 0xFFFF_FFFF) | ((z >> 32) << 1)
}

/// Spreads the 32 bits of `v` into the even bit positions of a `u64`.
#[inline]
pub(crate) fn interleave(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Extracts the even bit positions of `v` into a compact `u32`.
#[inline]
pub(crate) fn deinterleave(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// The Manhattan distance of the curve step `t → t+1`.
///
/// A step with distance `> 1` is a *diagonal* in the sense of Fig. 2.
pub fn step_distance(curve: &ZOrderCurve, t: u64) -> u64 {
    manhattan(curve.point(t), curve.point(t + 1))
}

/// `Ed(i, j)`: the Manhattan distance of the longest diagonal crossed when
/// walking the curve from position `i` to position `j` (Lemma 3, Fig. 2).
///
/// Returns 0 when `i == j`. The longest diagonal sits at the highest
/// power-of-two boundary inside `(min, max]`, which this computes in O(1)
/// curve evaluations.
pub fn longest_diagonal(curve: &ZOrderCurve, i: u64, j: u64) -> u64 {
    if i == j {
        return 0;
    }
    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
    // The curve step with the most trailing ones in [lo, hi) is the one
    // just below the highest multiple of a power of two in (lo, hi].
    let h = 63 - (lo ^ hi).leading_zeros();
    let boundary = (hi >> h) << h;
    debug_assert!(boundary > lo && boundary <= hi);
    step_distance(curve, boundary - 1)
}

/// A diagonal of the Z-order curve: the step `at → at+1` together with its
/// Manhattan distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Diagonal {
    /// The curve position whose successor step is the diagonal.
    pub at: u64,
    /// Manhattan distance of the step.
    pub distance: u64,
}

/// Enumerates all diagonals (steps of Manhattan distance `> 1`) in the
/// half-open position range `[from, to)`.
pub fn diagonals_in_range(curve: &ZOrderCurve, from: u64, to: u64) -> Vec<Diagonal> {
    let to = to.min(curve.len().saturating_sub(1));
    (from..to)
        .filter_map(|t| {
            let d = step_distance(curve, t);
            (d > 1).then_some(Diagonal { at: t, distance: d })
        })
        .collect()
}

/// Splits the energy of a message from curve position `i` to `j` into the
/// Lemma 3 decomposition `E(i,j) ≤ Eb(i,j) + Ed(i,j)`:
///
/// - `bounded`: the aligned-curve estimate `8·√|j−i|` of Lemma 4, capped
///   at the true distance;
/// - `diagonal`: the longest-diagonal term [`longest_diagonal`].
///
/// The actual Manhattan distance is also returned so that experiments can
/// check `actual ≤ bounded + diagonal`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergySplit {
    /// True Manhattan distance between the positions.
    pub actual: u64,
    /// Aligned-curve bound `Eb` (Lemma 4): `8·√|j−i|`, rounded up.
    pub bounded: u64,
    /// Longest-diagonal term `Ed` (Fig. 2).
    pub diagonal: u64,
}

/// Computes the [`EnergySplit`] for a message between positions `i`, `j`.
pub fn energy_split(curve: &ZOrderCurve, i: u64, j: u64) -> EnergySplit {
    let actual = manhattan(curve.point(i), curve.point(j));
    let gap = i.abs_diff(j);
    let bounded = (8.0 * (gap as f64).sqrt()).ceil() as u64;
    let diagonal = longest_diagonal(curve, i, j);
    EnergySplit {
        actual,
        bounded,
        diagonal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::BoundingBox;
    use proptest::prelude::*;

    #[test]
    fn fused_interleave_matches_pairwise() {
        for x in [0u32, 1, 2, 255, 256, 65_534, 65_535] {
            for y in [0u32, 1, 3, 129, 4096, 65_535] {
                assert_eq!(
                    interleave_xy(x, y),
                    interleave(x) | (interleave(y) << 1),
                    "({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn matches_bitloop_reference() {
        let c = ZOrderCurve::new(64);
        for i in 0..c.len() {
            let p = crate::reference::zorder_point_scalar(64, i);
            assert_eq!(c.point(i), p);
            assert_eq!(crate::reference::zorder_index_scalar(64, p), i);
            assert_eq!(c.index(p), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_bounds_checked_in_release() {
        let _ = ZOrderCurve::new(4).point(16);
    }

    #[test]
    fn figure2_grid_layout() {
        // Fig. 2 of the paper: 16 elements stored in Z-order.
        //   0  1 | 4  5
        //   2  3 | 6  7
        //   8  9 | 12 13
        //  10 11 | 14 15
        let c = ZOrderCurve::new(4);
        let expect = [
            (0, 0, 0),
            (1, 1, 0),
            (2, 0, 1),
            (3, 1, 1),
            (4, 2, 0),
            (5, 3, 0),
            (6, 2, 1),
            (7, 3, 1),
            (8, 0, 2),
            (9, 1, 2),
            (10, 0, 3),
            (11, 1, 3),
            (12, 2, 2),
            (13, 3, 2),
            (14, 2, 3),
            (15, 3, 3),
        ];
        for (i, x, y) in expect {
            assert_eq!(c.point(i), GridPoint::new(x, y), "index {i}");
            assert_eq!(c.index(GridPoint::new(x, y)), i);
        }
    }

    #[test]
    fn figure2_longest_diagonal_example() {
        // "Given i = 6 and j = 10 ... Ed(6, 10) = 4."
        let c = ZOrderCurve::new(4);
        assert_eq!(longest_diagonal(&c, 6, 10), 4);
        assert_eq!(longest_diagonal(&c, 10, 6), 4, "symmetric");
    }

    #[test]
    fn longest_diagonal_degenerate() {
        let c = ZOrderCurve::new(8);
        assert_eq!(longest_diagonal(&c, 5, 5), 0);
        // Adjacent cells within a 2x2 block: longest "diagonal" is the
        // unit step itself.
        assert_eq!(longest_diagonal(&c, 0, 1), 1);
    }

    #[test]
    fn longest_diagonal_matches_bruteforce() {
        let c = ZOrderCurve::new(16);
        for i in (0..255).step_by(7) {
            for j in (i + 1..256).step_by(13) {
                let brute = (i..j).map(|t| step_distance(&c, t)).max().unwrap();
                assert_eq!(longest_diagonal(&c, i, j), brute, "mismatch for ({i}, {j})");
            }
        }
    }

    #[test]
    fn bijective_roundtrip() {
        for side in [1u32, 2, 4, 8, 32] {
            let c = ZOrderCurve::new(side);
            let mut seen = vec![false; c.len() as usize];
            for i in 0..c.len() {
                let p = c.point(i);
                assert_eq!(c.index(p), i);
                let cell = (p.y * side + p.x) as usize;
                assert!(!seen[cell]);
                seen[cell] = true;
            }
        }
    }

    #[test]
    fn aligned_windows_stay_compact() {
        // Every 4^k consecutive *aligned* elements occupy exactly a
        // 2^k × 2^k subgrid.
        let c = ZOrderCurve::new(16);
        for k in 0..=2u32 {
            let window = 4u64.pow(k);
            for start in (0..c.len()).step_by(window as usize) {
                let bb =
                    BoundingBox::of_points((start..start + window).map(|i| c.point(i))).unwrap();
                assert_eq!(bb.max_side(), 1 << k, "window at {start}");
            }
        }
    }

    #[test]
    fn not_distance_bound() {
        // The jump across the middle of the grid has Manhattan distance
        // Θ(side) even though the index gap is 1.
        let side = 64u32;
        let c = ZOrderCurve::new(side);
        let mid = c.len() / 2;
        let d = manhattan(c.point(mid - 1), c.point(mid));
        assert!(d as u32 >= side, "midline jump {d} should be ≥ {side}");
    }

    #[test]
    fn diagonal_enumeration_counts() {
        let c = ZOrderCurve::new(4);
        let all = diagonals_in_range(&c, 0, 16);
        // Steps 1→2, 3→4, 5→6, ..: every odd t is a diagonal of ≥ 2.
        assert!(all.iter().all(|d| d.distance >= 2));
        assert!(all.iter().all(|d| d.at % 2 == 1));
        // The worst diagonal is at t = 7 (crossing to the lower half).
        let worst = all.iter().max_by_key(|d| d.distance).unwrap();
        assert_eq!(worst.at, 7);
        assert_eq!(worst.distance, 4);
    }

    #[test]
    fn energy_split_upper_bounds_actual() {
        let c = ZOrderCurve::new(32);
        for i in (0..c.len()).step_by(17) {
            for j in (0..c.len()).step_by(23) {
                let s = energy_split(&c, i, j);
                assert!(
                    s.actual <= s.bounded + s.diagonal,
                    "Lemma 3 violated for ({i}, {j}): {s:?}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(side_log in 0u32..8, raw in 0u64..u64::MAX) {
            let c = ZOrderCurve::new(1 << side_log);
            let idx = raw % c.len();
            prop_assert_eq!(c.index(c.point(idx)), idx);
        }

        #[test]
        fn prop_lemma3_split(i in 0u64..1024, j in 0u64..1024) {
            let c = ZOrderCurve::new(32);
            let s = energy_split(&c, i, j);
            prop_assert!(s.actual <= s.bounded + s.diagonal);
        }
    }
}
