//! Grid geometry: points on the processor grid and the Manhattan metric.

/// A coordinate on the processor grid.
///
/// `x` is the column and `y` the row; the origin is the upper-left corner,
/// matching the Z-order quadrant convention of Fig. 2 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct GridPoint {
    /// Column index.
    pub x: u32,
    /// Row index.
    pub y: u32,
}

impl GridPoint {
    /// Creates a point from column `x` and row `y`.
    pub const fn new(x: u32, y: u32) -> Self {
        GridPoint { x, y }
    }

    /// Manhattan distance to another point — the energy of one message.
    pub fn manhattan(self, other: GridPoint) -> u64 {
        manhattan(self, other)
    }

    /// Chebyshev (L∞) distance; used by alignment diagnostics.
    pub fn chebyshev(self, other: GridPoint) -> u64 {
        let dx = self.x.abs_diff(other.x) as u64;
        let dy = self.y.abs_diff(other.y) as u64;
        dx.max(dy)
    }

    /// Whether the two points are 4-neighbours on the grid
    /// (Manhattan distance exactly 1).
    pub fn is_adjacent(self, other: GridPoint) -> bool {
        manhattan(self, other) == 1
    }
}

impl std::fmt::Display for GridPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Manhattan distance between two grid points: `|x₁−x₂| + |y₁−y₂|`.
///
/// This is the per-message energy of the spatial computer model (§II-A).
#[inline]
pub fn manhattan(a: GridPoint, b: GridPoint) -> u64 {
    a.x.abs_diff(b.x) as u64 + a.y.abs_diff(b.y) as u64
}

/// Axis-aligned bounding box of a set of points; used to check the
/// *alignment* property of curves (every `4^k` consecutive elements fit in
/// a small square, Lemma 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundingBox {
    /// Minimum column/row corner.
    pub min: GridPoint,
    /// Maximum column/row corner (inclusive).
    pub max: GridPoint,
}

impl BoundingBox {
    /// The degenerate box containing a single point.
    pub fn of_point(p: GridPoint) -> Self {
        BoundingBox { min: p, max: p }
    }

    /// Smallest box containing all points of the iterator.
    ///
    /// Returns `None` on an empty iterator.
    pub fn of_points<I: IntoIterator<Item = GridPoint>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox::of_point(first);
        for p in it {
            bb.insert(p);
        }
        Some(bb)
    }

    /// Grows the box to contain `p`.
    pub fn insert(&mut self, p: GridPoint) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Width in cells (inclusive of both borders).
    pub fn width(&self) -> u32 {
        self.max.x - self.min.x + 1
    }

    /// Height in cells (inclusive of both borders).
    pub fn height(&self) -> u32 {
        self.max.y - self.min.y + 1
    }

    /// Longest side of the box.
    pub fn max_side(&self) -> u32 {
        self.width().max(self.height())
    }

    /// Whether `p` lies inside the box (borders inclusive).
    pub fn contains(&self, p: GridPoint) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_basic() {
        assert_eq!(manhattan(GridPoint::new(0, 0), GridPoint::new(0, 0)), 0);
        assert_eq!(manhattan(GridPoint::new(0, 0), GridPoint::new(3, 4)), 7);
        assert_eq!(manhattan(GridPoint::new(3, 4), GridPoint::new(0, 0)), 7);
        assert_eq!(manhattan(GridPoint::new(5, 1), GridPoint::new(1, 5)), 8);
    }

    #[test]
    fn manhattan_symmetry_and_triangle() {
        let pts = [
            GridPoint::new(0, 0),
            GridPoint::new(10, 3),
            GridPoint::new(7, 7),
            GridPoint::new(2, 9),
        ];
        for &a in &pts {
            for &b in &pts {
                assert_eq!(manhattan(a, b), manhattan(b, a));
                for &c in &pts {
                    assert!(manhattan(a, c) <= manhattan(a, b) + manhattan(b, c));
                }
            }
        }
    }

    #[test]
    fn adjacency() {
        let p = GridPoint::new(4, 4);
        assert!(p.is_adjacent(GridPoint::new(5, 4)));
        assert!(p.is_adjacent(GridPoint::new(4, 3)));
        assert!(!p.is_adjacent(GridPoint::new(5, 5)));
        assert!(!p.is_adjacent(p));
    }

    #[test]
    fn chebyshev_vs_manhattan() {
        let a = GridPoint::new(0, 0);
        let b = GridPoint::new(3, 4);
        assert_eq!(a.chebyshev(b), 4);
        assert!(a.chebyshev(b) <= manhattan(a, b));
    }

    #[test]
    fn bounding_box_growth() {
        let mut bb = BoundingBox::of_point(GridPoint::new(5, 5));
        assert_eq!(bb.width(), 1);
        assert_eq!(bb.height(), 1);
        bb.insert(GridPoint::new(7, 2));
        assert_eq!(bb.min, GridPoint::new(5, 2));
        assert_eq!(bb.max, GridPoint::new(7, 5));
        assert_eq!(bb.width(), 3);
        assert_eq!(bb.height(), 4);
        assert_eq!(bb.max_side(), 4);
        assert!(bb.contains(GridPoint::new(6, 3)));
        assert!(!bb.contains(GridPoint::new(4, 3)));
    }

    #[test]
    fn bounding_box_of_points() {
        assert_eq!(BoundingBox::of_points(std::iter::empty()), None);
        let bb = BoundingBox::of_points([
            GridPoint::new(1, 1),
            GridPoint::new(0, 3),
            GridPoint::new(2, 0),
        ])
        .unwrap();
        assert_eq!(bb.min, GridPoint::new(0, 0));
        assert_eq!(bb.max, GridPoint::new(2, 3));
    }
}
