//! Row-major and serpentine orders: negative controls for locality.
//!
//! Neither order is distance-bound, so Theorem 1 does not apply to them;
//! the experiments use them to demonstrate that the choice of curve
//! matters. Row-major additionally has non-adjacent consecutive positions
//! (the `Θ(√n)` jump at each row end), while the serpentine
//! (boustrophedon) order is edge-connected but still pays `Θ(√n)` for
//! index gaps of `√n` along a row, violating the `O(√j)` requirement.

use crate::geom::GridPoint;
use crate::Curve;

/// Plain row-major order: `index = y·side + x`.
#[derive(Debug, Clone)]
pub struct RowMajorCurve {
    side: u32,
}

impl RowMajorCurve {
    /// Creates the row-major order for the given side length.
    ///
    /// # Panics
    /// Panics when `side` is zero.
    pub fn new(side: u32) -> Self {
        assert!(side > 0, "row-major order needs a positive side");
        RowMajorCurve { side }
    }
}

impl Curve for RowMajorCurve {
    fn side(&self) -> u32 {
        self.side
    }

    fn point(&self, index: u64) -> GridPoint {
        debug_assert!(index < self.len(), "index {index} out of range");
        let s = self.side as u64;
        GridPoint::new((index % s) as u32, (index / s) as u32)
    }

    fn index(&self, p: GridPoint) -> u64 {
        debug_assert!(p.x < self.side && p.y < self.side, "{p} outside grid");
        (p.y as u64) * (self.side as u64) + p.x as u64
    }
}

/// Serpentine (boustrophedon) order: rows alternate direction, so
/// consecutive positions are always grid-adjacent.
#[derive(Debug, Clone)]
pub struct SerpentineCurve {
    side: u32,
}

impl SerpentineCurve {
    /// Creates the serpentine order for the given side length.
    ///
    /// # Panics
    /// Panics when `side` is zero.
    pub fn new(side: u32) -> Self {
        assert!(side > 0, "serpentine order needs a positive side");
        SerpentineCurve { side }
    }
}

impl Curve for SerpentineCurve {
    fn side(&self) -> u32 {
        self.side
    }

    fn point(&self, index: u64) -> GridPoint {
        debug_assert!(index < self.len(), "index {index} out of range");
        let s = self.side as u64;
        let y = index / s;
        let r = index % s;
        let x = if y.is_multiple_of(2) { r } else { s - 1 - r };
        GridPoint::new(x as u32, y as u32)
    }

    fn index(&self, p: GridPoint) -> u64 {
        debug_assert!(p.x < self.side && p.y < self.side, "{p} outside grid");
        let s = self.side as u64;
        let r = if p.y.is_multiple_of(2) {
            p.x as u64
        } else {
            s - 1 - p.x as u64
        };
        (p.y as u64) * s + r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::manhattan;

    #[test]
    fn row_major_layout() {
        let c = RowMajorCurve::new(3);
        assert_eq!(c.point(0), GridPoint::new(0, 0));
        assert_eq!(c.point(2), GridPoint::new(2, 0));
        assert_eq!(c.point(3), GridPoint::new(0, 1));
        assert_eq!(c.point(8), GridPoint::new(2, 2));
        for i in 0..9 {
            assert_eq!(c.index(c.point(i)), i);
        }
    }

    #[test]
    fn row_major_row_end_jump() {
        let side = 32;
        let c = RowMajorCurve::new(side);
        let d = manhattan(c.point(side as u64 - 1), c.point(side as u64));
        assert_eq!(d, side as u64, "row wrap costs the full side length");
    }

    #[test]
    fn serpentine_layout() {
        let c = SerpentineCurve::new(3);
        let expect = [
            (0, 0),
            (1, 0),
            (2, 0),
            (2, 1),
            (1, 1),
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 2),
        ];
        for (i, (x, y)) in expect.into_iter().enumerate() {
            assert_eq!(c.point(i as u64), GridPoint::new(x, y), "index {i}");
        }
    }

    #[test]
    fn serpentine_adjacent_and_bijective() {
        for side in [1u32, 2, 5, 16] {
            let c = SerpentineCurve::new(side);
            let mut seen = vec![false; c.len() as usize];
            for i in 0..c.len() {
                let p = c.point(i);
                assert_eq!(c.index(p), i);
                let cell = (p.y * side + p.x) as usize;
                assert!(!seen[cell]);
                seen[cell] = true;
                if i > 0 {
                    assert!(c.point(i - 1).is_adjacent(p), "step {i} not adjacent");
                }
            }
        }
    }

    #[test]
    fn serpentine_not_distance_bound() {
        // Index gap side−1 along the first row costs side−1 ≫ √(side−1).
        let side = 64u32;
        let c = SerpentineCurve::new(side);
        let j = side as u64 - 1;
        let d = manhattan(c.point(0), c.point(j));
        assert_eq!(d, j);
        assert!((d as f64) > 4.0 * (j as f64).sqrt());
    }
}
