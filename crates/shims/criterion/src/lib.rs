//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace benches use: `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a fixed-iteration
//! wall-clock harness (warmup, then `sample_size` samples); each
//! benchmark prints its mean and best ns/iter. No statistics engine,
//! no HTML reports — results land on stdout and in
//! `target/shim-criterion.csv` for scripting.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing loop handle passed to the closure of
/// [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One measured benchmark: mean and best observed nanoseconds per
/// iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/id` label.
    pub label: String,
    /// Mean ns per iteration across samples.
    pub mean_ns: f64,
    /// Fastest sample's ns per iteration.
    pub min_ns: f64,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measures one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);

        // Calibrate the per-sample iteration count so one sample takes
        // roughly 25ms (min 1 iter), then warm up once.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(25).as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 24) as u64;

        let mut total_ns = 0f64;
        let mut min_ns = f64::INFINITY;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let ns = b.elapsed.as_nanos() as f64 / iters as f64;
            total_ns += ns;
            min_ns = min_ns.min(ns);
        }
        let mean_ns = total_ns / self.sample_size as f64;
        println!("{label:<56} time: [mean {mean_ns:>12.1} ns/iter, best {min_ns:>12.1} ns/iter]");
        self.criterion.results.push(Measurement {
            label,
            mean_ns,
            min_ns,
        });
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Measures a stand-alone benchmark (its own single-entry group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group(name.to_string())
            .bench_function(BenchmarkId::from_parameter("run"), f);
        self
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Appends the measurements to `target/shim-criterion.csv`.
    pub fn flush_csv(&self) {
        let mut out = String::new();
        for m in &self.results {
            let _ = writeln!(out, "{},{:.1},{:.1}", m.label, m.mean_ns, m.min_ns);
        }
        let _ = std::fs::create_dir_all("target");
        let _ = std::fs::write("target/shim-criterion.csv", out);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.flush_csv();
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip the
            // (slow) measurement loop there and in `--list` probes.
            if std::env::args().any(|a| a == "--test" || a == "--list") {
                println!("shim-criterion: skipping measurements (test harness probe)");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_records_measurements() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
        let ms = criterion.measurements();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].label, "shim_smoke/sum/100");
        assert!(ms[0].mean_ns > 0.0);
        assert!(ms[0].min_ns <= ms[0].mean_ns);
    }
}
