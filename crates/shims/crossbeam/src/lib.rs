//! Offline stand-in for the `crossbeam` crate: [`utils::CachePadded`]
//! (the energy meter's false-sharing guard) and [`channel`] — the
//! bounded MPMC channel the `spatial-serve` worker pool runs on.

/// Utility types (`crossbeam::utils`).
pub mod utils {
    /// Pads and aligns a value to 128 bytes so adjacent atomics don't
    /// share a cache line (false sharing) on the energy meter's hot
    /// counters.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in padding.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

/// Multi-producer multi-consumer channels (`crossbeam::channel`),
/// restricted to the bounded variant this workspace uses: a
/// fixed-capacity FIFO whose full buffer **blocks senders** — the
/// backpressure primitive of the `spatial-serve` submission queue.
///
/// Semantics match upstream crossbeam where implemented:
/// - [`Sender::send`] blocks while the buffer is full and fails only
///   when every receiver is gone;
/// - [`Receiver::recv`] blocks while the buffer is empty and fails only
///   when every sender is gone *and* the buffer has drained —
///   in-flight messages are always delivered before disconnect;
/// - [`Receiver::try_recv`] never blocks (the queue-drain hook the
///   serve-layer coalescer is built on);
/// - dropping the last `Sender`/`Receiver` disconnects and wakes every
///   blocked peer.
///
/// Built on the parking_lot shim's `Mutex`/`Condvar` (one lock per
/// channel, two wait queues). The serve layer hands off coalesced
/// *batches*, not per-query messages, so channel overhead is off the
/// hot path by design — see `crates/serve/DESIGN.md`.
pub mod channel {
    use parking_lot::{Condvar, Mutex};
    use std::collections::VecDeque;
    use std::sync::Arc;

    /// Error of [`Sender::send`]: every receiver disconnected; the
    /// unsent message is handed back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error of [`Receiver::recv`]: every sender disconnected and the
    /// buffer is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The buffer is momentarily empty (senders remain connected).
        Empty,
        /// Every sender disconnected and the buffer is drained.
        Disconnected,
    }

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message lands or senders disconnect.
        not_empty: Condvar,
        /// Signalled when a slot frees or receivers disconnect.
        not_full: Condvar,
    }

    /// The sending half of a bounded channel; clone for more producers.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a bounded channel; clone for more
    /// consumers.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates a bounded FIFO channel with room for `cap` in-flight
    /// messages.
    ///
    /// # Panics
    /// Panics when `cap` is zero (upstream's zero-capacity rendezvous
    /// channel is not implemented — the serve layer always buffers).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "rendezvous (capacity-0) channels unsupported");
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                buf: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is buffered; fails (returning the
        /// message) only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.buf.len() < state.cap {
                    state.buf.push_back(value);
                    drop(state);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                self.chan.not_full.wait(&mut state);
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Blocked receivers must observe the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails only when every sender
        /// is gone and the buffer has drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock();
            loop {
                if let Some(value) = state.buf.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                self.chan.not_empty.wait(&mut state);
            }
        }

        /// Non-blocking receive — the coalescer's drain hook.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock();
            match state.buf.pop_front() {
                Some(value) => {
                    drop(state);
                    self.chan.not_full.notify_one();
                    Ok(value)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of currently buffered messages (racy; diagnostics
        /// only).
        pub fn len(&self) -> usize {
            self.chan.state.lock().buf.len()
        }

        /// Whether the buffer is momentarily empty (racy; diagnostics
        /// only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                // Undeliverable messages are dropped NOW, not when the
                // channel itself dies: a buffered message can hold
                // resources whose release other threads are blocked on
                // (the serve layer's in-flight jobs carry reply
                // senders — a dead worker's queued jobs must disconnect
                // their tickets promptly, or `Ticket::wait` hangs until
                // service teardown). Moved out under the lock, dropped
                // after releasing it, in case a payload Drop re-enters.
                let orphaned = std::mem::take(&mut state.buf);
                drop(state);
                // Blocked senders must observe the disconnect.
                self.chan.not_full.notify_all();
                drop(orphaned);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError, SendError, TryRecvError};
    use super::utils::CachePadded;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn aligned_and_transparent() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        let counter = CachePadded::new(AtomicU64::new(3));
        counter.fetch_add(4, Ordering::Relaxed);
        assert_eq!(counter.load(Ordering::Relaxed), 7);
        assert_eq!(counter.into_inner().into_inner(), 7);
    }

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).expect("receiver alive");
        }
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn full_buffer_blocks_sender_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).expect("room");
        let producer = std::thread::spawn(move || {
            // Blocks until the consumer drains the first message.
            tx.send(2).expect("receiver alive");
            tx.send(3).expect("receiver alive");
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv().expect("producer alive"));
        }
        producer.join().expect("producer");
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn drop_semantics_disconnect_both_ways() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(7).expect("room");
        drop(tx);
        // In-flight messages deliver before the disconnect is reported.
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn last_receiver_drop_releases_buffered_messages() {
        // A message sitting in a dead channel's buffer must not keep
        // its payload alive: here the payload is itself a sender whose
        // receiver can only disconnect once the payload drops.
        let (tx, rx) = bounded::<super::channel::Sender<u8>>(2);
        let (reply_tx, reply_rx) = bounded::<u8>(1);
        assert!(tx.send(reply_tx).is_ok(), "receiver alive");
        drop(rx);
        assert_eq!(
            reply_rx.recv(),
            Err(RecvError),
            "buffered payload must drop with the last receiver"
        );
    }

    #[test]
    fn cloned_senders_count_toward_disconnect() {
        let (tx, rx) = bounded::<u32>(8);
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(1).expect("second sender keeps the channel open");
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..25 {
                        tx.send(p * 100 + i).expect("receiver alive");
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for p in producers {
            p.join().expect("producer");
        }
        got.sort_unstable();
        let want: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..25).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(got, want);
    }
}
