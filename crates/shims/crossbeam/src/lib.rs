//! Offline stand-in for the `crossbeam` crate: only
//! [`utils::CachePadded`], which is all this workspace uses.

/// Utility types (`crossbeam::utils`).
pub mod utils {
    /// Pads and aligns a value to 128 bytes so adjacent atomics don't
    /// share a cache line (false sharing) on the energy meter's hot
    /// counters.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in padding.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::CachePadded;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn aligned_and_transparent() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        let counter = CachePadded::new(AtomicU64::new(3));
        counter.fetch_add(4, Ordering::Relaxed);
        assert_eq!(counter.load(Ordering::Relaxed), 7);
        assert_eq!(counter.into_inner().into_inner(), 7);
    }
}
