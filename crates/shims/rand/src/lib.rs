//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crate registry, so the workspace ships
//! this minimal, API-compatible subset of `rand 0.8`: the [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::StdRng`] (xoshiro256++ seeded through
//! SplitMix64), uniform [`Rng::gen_range`] over integer ranges, and
//! [`seq::SliceRandom::shuffle`]. The value stream differs from upstream
//! `rand`, but every consumer in this workspace treats the generator as
//! an arbitrary deterministic seed → stream map, so only determinism
//! matters, not the exact values.

/// A source of random 64-bit words. The one low-level method every
/// other helper is derived from.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the generator's full range
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi]` (inclusive). `lo ≤ hi` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let width = span + 1;
                // Debiased multiply-shift (Lemire); the rejection zone is
                // at most `width` out of 2^64.
                let threshold = width.wrapping_neg() % width;
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (width as u128);
                    if (m as u64) >= threshold {
                        return lo.wrapping_add((m >> 64) as u64 as $t);
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + One> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform + PartialOrd + One> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Helper for turning an exclusive upper bound into an inclusive one.
pub trait One {
    /// `self - 1`.
    fn minus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self {
                self - 1
            }
        }
    )*};
}
impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random number generator interface.
pub trait Rng: RngCore {
    /// Uniform draw from the type's [`Standard`] distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from an integer range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's stand-in
    /// for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The four xoshiro256++ state words — the checkpoint hook the
        /// durable serve layer journals so a recovered session RNG
        /// resumes the exact value stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds the generator from a [`StdRng::state`] checkpoint.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// The commonly-imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = rng.gen_range(0..=0);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((9000..11000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn bool_and_f64_sampling() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4500..5500).contains(&heads));
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
        let p9 = (0..10_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!(p9 > 8700);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }

    #[test]
    fn full_u64_range_sampling() {
        let mut rng = StdRng::seed_from_u64(5);
        // Must not loop forever or panic on the maximal span.
        for _ in 0..100 {
            let _: u64 = rng.gen_range(0..u64::MAX);
        }
    }
}
