//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! `arg in strategy` bindings, integer-range strategies, an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Case generation is
//! deterministic (seeded per test by the argument pattern), the first
//! two cases pin the range endpoints for edge coverage, and there is no
//! shrinking — a failing case panics with its inputs in the message.

use rand::prelude::*;

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many sampled inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 96 keeps the suite fast while still
        // hitting the endpoint cases deterministically.
        ProptestConfig { cases: 96 }
    }
}

/// A value generator: the subset of proptest's `Strategy` this
/// workspace needs (integer ranges).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws the value for case number `case` (cases 0 and 1 are the
    /// range endpoints).
    fn sample(&self, rng: &mut StdRng, case: u32) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng, case: u32) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                match case {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => rng.gen_range(self.clone()),
                }
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng, case: u32) -> $t {
                match case {
                    0 => *self.start(),
                    1 => *self.end(),
                    _ => rng.gen_range(self.clone()),
                }
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng, case: u32) -> Self::Value {
                ($(self.$idx.sample(rng, case),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::prelude::*;

    /// Inclusive length bounds for [`vec`]. Only `usize` ranges convert
    /// into it, which is what pins untyped literals to `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng, case: u32) -> Self::Value {
            // Endpoint-pinning (cases 0/1) applies to the length;
            // elements are always drawn randomly.
            let len = match case {
                0 => self.len.lo,
                1 => self.len.hi_inclusive,
                _ => rng.gen_range(self.len.lo..=self.len.hi_inclusive),
            };
            (0..len)
                .map(|_| self.element.sample(rng, 2 + case))
                .collect()
        }
    }
}

/// Seeds the per-test generator from the stringified argument pattern,
/// so each property gets a distinct but reproducible stream.
pub fn rng_for(test_signature: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_signature.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Runs a block of property tests. See the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($cfg) $($rest)*);
    };
    (@cases ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(
                stringify!($name), $("/", stringify!($arg), ":", stringify!($strat)),*
            ));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng, case);)*
                let result = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                })();
                if let Err(message) = result {
                    panic!(
                        "property {} failed on case {case} with inputs {:?}: {message}",
                        stringify!($name),
                        ($((stringify!($arg), &$arg),)*),
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cases ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// The commonly-imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(a in 3u32..10, b in 0u64..u64::MAX, c in 1usize..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < u64::MAX);
            prop_assert!((1..=4).contains(&c));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_accepted(x in 0i64..100) {
            prop_assert_eq!(x - x, 0);
        }
    }

    #[test]
    fn endpoint_cases_come_first() {
        let strat = 5u32..9;
        let mut rng = crate::rng_for("endpoints");
        assert_eq!(Strategy::sample(&strat, &mut rng, 0), 5);
        assert_eq!(Strategy::sample(&strat, &mut rng, 1), 8);
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn inner(v in 0u32..4) {
                prop_assert!(v < 3, "v was {v}");
            }
        }
        inner();
    }
}
