//! Offline stand-in for the `parking_lot` crate: [`Mutex`], [`RwLock`],
//! and [`Condvar`] backed by their `std::sync` counterparts, with
//! parking_lot's panic-free signatures (`lock()` needs no `unwrap()`;
//! poisoning is cleared, matching parking_lot semantics).

/// Mutual exclusion wrapper with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// A newtype over [`std::sync::MutexGuard`] so [`Condvar::wait`] can
/// take parking_lot's `&mut` guard signature (the inner guard is moved
/// through the std condvar and restored in place).
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()`
/// signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` signature —
/// the blocking primitive under the crossbeam shim's bounded channel.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded mutex and blocks until notified;
    /// the lock is re-acquired (in place) before returning. Spurious
    /// wakeups are possible — always wait in a predicate loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        });
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1u32]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(7u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() += 1;
        assert_eq!(l.into_inner(), 8);
    }

    #[test]
    fn condvar_handoff_across_threads() {
        let state = Arc::new((Mutex::new(0u32), Condvar::new()));
        let peer = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*peer;
            let mut guard = m.lock();
            while *guard == 0 {
                cv.wait(&mut guard);
            }
            *guard + 1
        });
        {
            let (m, cv) = &*state;
            *m.lock() = 41;
            cv.notify_one();
        }
        assert_eq!(handle.join().expect("waiter"), 42);
    }
}
