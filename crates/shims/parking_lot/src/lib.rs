//! Offline stand-in for the `parking_lot` crate: a [`Mutex`] backed by
//! [`std::sync::Mutex`] whose `lock()` needs no `unwrap()` (poisoning
//! is cleared, matching parking_lot semantics).

/// Mutual exclusion wrapper with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1u32]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
