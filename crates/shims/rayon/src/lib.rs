//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crate registry, so the workspace ships
//! this minimal substitute:
//!
//! - [`join`] and [`scope`] run on **real OS threads** (via
//!   [`std::thread::scope`]), so fork-join code — the light-first layout
//!   constructor, the batched curve transforms — gets genuine
//!   multi-core speedups; [`join`] stops spawning past
//!   `⌈log₂(threads)⌉ + 1` levels of nesting and runs small halves
//!   inline, so deep recursive splits never oversubscribe the machine;
//! - the parallel *iterator* adapters (`par_iter`, `into_par_iter`)
//!   degrade to the equivalent sequential [`Iterator`] chains. Every
//!   hot path in this workspace that needs real parallelism uses the
//!   fork-join API (see `spatial_sfc::par_fill` and friends), so the
//!   iterator fallback only affects diagnostics and test helpers.

use std::marker::PhantomData;

/// Number of worker threads a fork-join computation may use.
///
/// The `SPATIAL_THREADS` environment variable overrides the probed
/// count (any integer ≥ 1; unset, empty, or unparseable values fall
/// back to `available_parallelism`). The calibration sweeps and the
/// CI wall-clock scaling smoke use it to pin worker counts without
/// recompiling — mirroring the real rayon's `RAYON_NUM_THREADS`.
///
/// Memoized: `available_parallelism` probes cgroup files on Linux and
/// heap-allocates on every call, which would break the engines'
/// zero-allocation contracts (and costs a syscall in batch hot paths).
/// The override is read once with the same memo, so flipping the env
/// var mid-process has no effect — exactly like resizing the real
/// rayon's global pool after first use.
pub fn current_num_threads() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("SPATIAL_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

thread_local! {
    /// Current fork-join recursion depth on this thread (propagated
    /// into spawned halves so nested [`join`]s see their true depth).
    static JOIN_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };

    /// Spawns attributed to the fork-join computation rooted on this
    /// thread. Each [`join`] adds its own spawn here *plus* every spawn
    /// its spawned half performed (the child's count rides back with
    /// the result), so after a top-level call returns, this counter
    /// holds the computation's **whole-tree** spawn total — unpolluted
    /// by joins running concurrently on unrelated threads.
    static LOCAL_SPAWNS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Total OS threads ever spawned by [`join`] **process-wide** — a
/// diagnostics meter. Under concurrent test execution other threads'
/// joins land in the same counter, so regression *assertions* must use
/// [`count_join_spawns`], which scopes counting to one computation.
#[doc(hidden)]
pub fn join_spawned_threads() -> u64 {
    JOIN_SPAWNS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Runs `f` and returns its result together with the exact number of
/// OS threads [`join`] spawned **for that computation alone**,
/// including spawns made by nested joins on spawned threads.
///
/// Spawn counts propagate from each spawned half back to its parent at
/// the join point, so the calling thread's counter sees the whole
/// fork-join tree; concurrent computations on other threads never leak
/// into the count. This is the race-free meter the spawn-cutoff
/// regression tests pin their bounds on.
pub fn count_join_spawns<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = LOCAL_SPAWNS.with(|c| c.get());
    let result = f();
    let after = LOCAL_SPAWNS.with(|c| c.get());
    (result, after - before)
}

static JOIN_SPAWNS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Recursion depth beyond which [`join`] runs both halves inline:
/// `⌈log₂(threads)⌉ + 1` levels of forking already yield more than
/// `2 × threads` leaves, so spawning deeper only oversubscribes the
/// machine with threads that have no core to run on (the real rayon
/// never spawns per call — it schedules onto a fixed pool).
#[doc(hidden)]
pub fn join_spawn_depth_limit() -> usize {
    static LIMIT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *LIMIT.get_or_init(|| {
        let threads = current_num_threads();
        (usize::BITS - threads.next_power_of_two().leading_zeros()) as usize
    })
}

/// Runs both closures, potentially in parallel, and returns both
/// results.
///
/// Near the top of a fork-join recursion `oper_a` runs on a spawned
/// scoped thread and `oper_b` inline; past
/// [`join_spawn_depth_limit`] levels of nesting both halves run
/// inline on the calling thread. Without the cutoff every recursive
/// split — the light-first builder, the batch curve transforms —
/// spawned a fresh OS thread per call, oversubscribing the machine at
/// depth (thousands of threads for a 2^12-leaf recursion).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let depth = JOIN_DEPTH.with(|d| d.get());
    if depth >= join_spawn_depth_limit() {
        // Small halves: run inline, no thread, no synchronization.
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    JOIN_SPAWNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    LOCAL_SPAWNS.with(|c| c.set(c.get() + 1));
    // Restore the caller's depth even when a half panics and the
    // unwind escapes through `thread::scope` — otherwise a caught
    // panic would leave the thread-local inflated and every later
    // join on this thread would silently run inline.
    struct DepthGuard(usize);
    impl Drop for DepthGuard {
        fn drop(&mut self) {
            JOIN_DEPTH.with(|d| d.set(self.0));
        }
    }
    let _guard = DepthGuard(depth);
    let (ra, child_spawns, rb) = std::thread::scope(|s| {
        let ha = s.spawn(move || {
            // The spawned thread starts at depth 0 in its own
            // thread-locals; inherit the caller's depth so nested
            // joins stay bounded, and report the subtree's spawn count
            // back with the result so the parent's scoped counter sees
            // the whole computation.
            JOIN_DEPTH.with(|d| d.set(depth + 1));
            let ra = oper_a();
            (ra, LOCAL_SPAWNS.with(|c| c.get()))
        });
        JOIN_DEPTH.with(|d| d.set(depth + 1));
        let rb = oper_b();
        let (ra, child_spawns) = ha.join().expect("joined task panicked");
        (ra, child_spawns, rb)
    });
    LOCAL_SPAWNS.with(|c| c.set(c.get() + child_spawns));
    (ra, rb)
}

/// A fork-join scope handle (see [`scope`]).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    _marker: PhantomData<&'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on a scoped OS thread. The task receives a scope
    /// reference so it can spawn further siblings.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            f(&Scope {
                inner,
                _marker: PhantomData,
            })
        });
    }
}

/// Creates a fork-join scope: tasks spawned inside are joined before
/// `scope` returns. Backed by [`std::thread::scope`].
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| {
        op(&Scope {
            inner: s,
            _marker: PhantomData,
        })
    })
}

/// Sequential stand-ins for rayon's parallel iterator traits.
pub mod iter {
    /// `into_par_iter()` for owned collections and ranges: yields the
    /// ordinary sequential iterator, so every adapter (`map`, `filter`,
    /// `step_by`, `sum`, `collect`, …) is the std one.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// The "parallel" (here: sequential) iterator type.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` for slices (and everything that derefs to one).
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    /// `par_iter_mut()` for slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;

        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }
}

/// The commonly-imported names, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_spawns_are_bounded_in_balanced_recursion() {
        // A full binary fork-join of depth 12 (4096 leaves). Without
        // the depth cutoff this spawned 4095 OS threads; with it, only
        // the top ⌈log₂(threads)⌉+1 levels fork.
        fn count(depth: u32) -> u64 {
            if depth == 0 {
                return 1;
            }
            let (a, b) = super::join(|| count(depth - 1), || count(depth - 1));
            a + b
        }
        let (total, spawned) = super::count_join_spawns(|| count(12));
        assert_eq!(total, 4096, "results must be unaffected");
        // Exactly one spawn per internal node of the truncated
        // recursion tree: 2^limit - 1 for a full binary tree cut at
        // the depth limit. The scoped counter is race-free, so the
        // bound is tight — no slack for concurrent tests.
        let bound = (1u64 << super::join_spawn_depth_limit()) - 1;
        assert_eq!(
            spawned, bound,
            "balanced recursion spawned {spawned} threads (expected {bound})"
        );
    }

    #[test]
    fn join_spawns_are_bounded_in_chain_recursion() {
        // A lopsided chain (always recursing in the spawned half) is
        // the worst case for per-call spawning: 500 nested threads
        // before the cutoff, ≤ depth-limit after.
        fn chain(depth: u32) -> u64 {
            if depth == 0 {
                return 0;
            }
            let (a, _) = super::join(|| chain(depth - 1), || ());
            a + 1
        }
        let (total, spawned) = super::count_join_spawns(|| chain(500));
        assert_eq!(total, 500, "results must be unaffected");
        // One spawn per level until the cutoff — exact, race-free.
        let bound = super::join_spawn_depth_limit() as u64;
        assert_eq!(
            spawned, bound,
            "chain recursion spawned {spawned} threads (expected {bound})"
        );
    }

    #[test]
    fn count_join_spawns_isolated_from_concurrent_joins() {
        // A background thread hammers `join` the whole time; the scoped
        // counter on this thread must still report exactly its own
        // computation's spawns (the global meter would race here).
        let stop = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                while stop.load(Ordering::Relaxed) == 0 {
                    let _ = super::join(|| 1u64, || 2u64);
                }
            });
            for _ in 0..50 {
                let ((a, b), spawned) = super::count_join_spawns(|| super::join(|| 3u64, || 4u64));
                assert_eq!((a, b), (3, 4));
                assert_eq!(spawned, 1, "exactly this computation's spawn");
            }
            stop.store(1, Ordering::Relaxed);
        });
    }

    #[test]
    fn scope_joins_nested_spawns() {
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|s2| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    s2.spawn(|_| {
                        counter.fetch_add(10, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 44);
    }

    #[test]
    fn scope_borrows_mutable_chunks() {
        let mut out = vec![0u32; 64];
        let (a, b) = out.split_at_mut(32);
        super::scope(|s| {
            s.spawn(move |_| a.iter_mut().for_each(|v| *v = 1));
            s.spawn(move |_| b.iter_mut().for_each(|v| *v = 2));
        });
        assert_eq!(out[..32], [1; 32]);
        assert_eq!(out[32..], [2; 32]);
    }

    #[test]
    fn spatial_threads_env_overrides_thread_count() {
        // The memo latches on first use, so the override must be
        // present from process start: re-exec this exact test as a
        // child with SPATIAL_THREADS set and assert inside the child.
        if std::env::var("SPATIAL_THREADS").is_ok() {
            assert_eq!(
                super::current_num_threads(),
                3,
                "child must see the SPATIAL_THREADS override"
            );
            return;
        }
        let exe = std::env::current_exe().expect("test binary path");
        let status = std::process::Command::new(exe)
            .args([
                "--exact",
                "tests::spatial_threads_env_overrides_thread_count",
                "--nocapture",
            ])
            .env("SPATIAL_THREADS", "3")
            .status()
            .expect("spawn child test process");
        assert!(status.success(), "child assertion failed: {status}");
    }

    #[test]
    fn iterator_adapters_compose() {
        let total: u64 = (0..100u64).into_par_iter().step_by(2).map(|v| v + 1).sum();
        assert_eq!(total, 2500);
        let v = [3u32, 1, 2];
        assert_eq!(v.par_iter().max(), Some(&3));
        let doubled: Vec<u32> = v.par_iter().map(|&x| 2 * x).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
    }
}
