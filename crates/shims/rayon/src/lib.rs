//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crate registry, so the workspace ships
//! this minimal substitute:
//!
//! - [`join`] and [`scope`] run on **real OS threads** (via
//!   [`std::thread::scope`]), so fork-join code — the light-first layout
//!   constructor, the batched curve transforms — gets genuine
//!   multi-core speedups;
//! - the parallel *iterator* adapters (`par_iter`, `into_par_iter`)
//!   degrade to the equivalent sequential [`Iterator`] chains. Every
//!   hot path in this workspace that needs real parallelism uses the
//!   fork-join API (see `spatial_sfc::par_fill` and friends), so the
//!   iterator fallback only affects diagnostics and test helpers.

use std::marker::PhantomData;

/// Number of worker threads a fork-join computation may use.
///
/// Memoized: `available_parallelism` probes cgroup files on Linux and
/// heap-allocates on every call, which would break the engines'
/// zero-allocation contracts (and costs a syscall in batch hot paths).
/// The real rayon reads its pool size without allocating, so the memo
/// matches its behavior when the shim is swapped out.
pub fn current_num_threads() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs both closures, potentially in parallel, and returns both
/// results. `oper_a` runs on a spawned scoped thread, `oper_b` inline.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let ha = s.spawn(oper_a);
        let rb = oper_b();
        (ha.join().expect("joined task panicked"), rb)
    })
}

/// A fork-join scope handle (see [`scope`]).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    _marker: PhantomData<&'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on a scoped OS thread. The task receives a scope
    /// reference so it can spawn further siblings.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            f(&Scope {
                inner,
                _marker: PhantomData,
            })
        });
    }
}

/// Creates a fork-join scope: tasks spawned inside are joined before
/// `scope` returns. Backed by [`std::thread::scope`].
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| {
        op(&Scope {
            inner: s,
            _marker: PhantomData,
        })
    })
}

/// Sequential stand-ins for rayon's parallel iterator traits.
pub mod iter {
    /// `into_par_iter()` for owned collections and ranges: yields the
    /// ordinary sequential iterator, so every adapter (`map`, `filter`,
    /// `step_by`, `sum`, `collect`, …) is the std one.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// The "parallel" (here: sequential) iterator type.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` for slices (and everything that derefs to one).
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    /// `par_iter_mut()` for slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;

        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }
}

/// The commonly-imported names, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_joins_nested_spawns() {
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|s2| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    s2.spawn(|_| {
                        counter.fetch_add(10, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 44);
    }

    #[test]
    fn scope_borrows_mutable_chunks() {
        let mut out = vec![0u32; 64];
        let (a, b) = out.split_at_mut(32);
        super::scope(|s| {
            s.spawn(move |_| a.iter_mut().for_each(|v| *v = 1));
            s.spawn(move |_| b.iter_mut().for_each(|v| *v = 2));
        });
        assert_eq!(out[..32], [1; 32]);
        assert_eq!(out[32..], [2; 32]);
    }

    #[test]
    fn iterator_adapters_compose() {
        let total: u64 = (0..100u64).into_par_iter().step_by(2).map(|v| v + 1).sum();
        assert_eq!(total, 2500);
        let v = [3u32, 1, 2];
        assert_eq!(v.par_iter().max(), Some(&3));
        let doubled: Vec<u32> = v.par_iter().map(|&x| 2 * x).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
    }
}
