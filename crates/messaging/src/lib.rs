//! The local messaging framework of §III-D (Theorem 3).
//!
//! Trees of unbounded degree cannot store all children in one
//! constant-memory processor, and even if they could, direct
//! parent→children messaging would cost up to `Θ(n^{3/2})` energy on a
//! star. The paper's fix is the TRANSFORM virtual tree (Fig. 3): each
//! vertex keeps at most two *current* children and adopts at most two
//! *appended* children (siblings), so that every message fans out along
//! a balanced relay tree over the (light-first-contiguous) sibling list.
//!
//! Supported operations (the two the paper needs for treefix and LCA):
//!
//! - **Local broadcast** ([`local::local_broadcast`]): every vertex sends
//!   one identical message to all its children.
//! - **Local reduce** ([`local::local_reduce`]): every parent receives
//!   the (ordered, associative) reduction of its children's messages.
//!
//! Both take `O(n)` energy and `O(log n)` depth on an energy-bound
//! light-first layout. [`relay`] exposes the balanced relay charging for
//! arbitrary participant subsets (used by the treefix RAKE operation).

//! [`schedule::BroadcastSchedule`] precomputes the relay rounds as a
//! round-indexed CSR of slot pairs, so repeat broadcasters (the
//! batched-LCA engine) replay identical charges without rebuilding the
//! per-round message batches.

pub mod local;
pub mod relay;
pub mod schedule;
pub mod virtual_tree;

pub use local::{local_broadcast, local_reduce};
pub use schedule::BroadcastSchedule;
pub use virtual_tree::VirtualTree;
