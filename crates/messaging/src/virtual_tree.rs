//! The TRANSFORM virtual tree (§III-D, Fig. 3).
//!
//! For every vertex `v` with children `c₁, …, c_d` (sorted by subtree
//! size, i.e. light-first sibling order), TRANSFORM keeps `C(v) = {c₁,
//! c_{⌊d/2⌋+1}}` as *current* children and hands the remaining siblings
//! to those two heads as *appended* children, recursively. The result:
//! every vertex has at most 2 current heads + 2 appended heads (virtual
//! degree ≤ 4 children), and Lemma 8 shows the light-first storage
//! positions never change.
//!
//! The *relay structure* this produces is, per parent `v`, a balanced
//! binary tree over `v`'s sibling list; a message from `v` to all its
//! children travels down this tree in `O(log d)` hops, with total energy
//! `O(n)` over the whole tree (Theorem 3).

use spatial_layout::Layout;
use spatial_model::{Machine, Slot};
use spatial_tree::{traversal, NodeId, Tree, NIL};

/// The virtual (TRANSFORM-ed) tree `T̂` with relay metadata.
#[derive(Debug, Clone)]
pub struct VirtualTree {
    /// Relay parent of each vertex: the vertex it receives its real
    /// parent's messages from (the real parent for current heads, the
    /// adopting sibling for appended heads; `NIL` at the root).
    relay_parent: Vec<NodeId>,
    /// Relay round of each vertex: its depth within its parent's sibling
    /// relay tree (current heads are 1; `0` at the root).
    relay_round: Vec<u32>,
    /// Current-child heads of each vertex (`C(v)` after TRANSFORM),
    /// `NIL`-padded.
    c_heads: Vec<[NodeId; 2]>,
    /// Appended-child heads of each vertex (`A(v)` after TRANSFORM),
    /// `NIL`-padded.
    a_heads: Vec<[NodeId; 2]>,
    /// Maximum relay round (the number of broadcast rounds needed).
    max_round: u32,
}

impl VirtualTree {
    /// Builds the virtual tree, sorting children by subtree size (the
    /// light-first sibling order the layout already uses).
    pub fn new(tree: &Tree) -> Self {
        let sizes = tree.subtree_sizes();
        Self::with_sizes(tree, &sizes)
    }

    /// Builds the virtual tree from precomputed subtree sizes.
    pub fn with_sizes(tree: &Tree, sizes: &[u32]) -> Self {
        let n = tree.n() as usize;
        let sorted = traversal::children_by_size(tree, sizes);
        let mut vt = VirtualTree {
            relay_parent: vec![NIL; n],
            relay_round: vec![0; n],
            c_heads: vec![[NIL; 2]; n],
            a_heads: vec![[NIL; 2]; n],
            max_round: 0,
        };

        // Worklist of (vertex, owner of its appended range, lo, hi):
        // A(vertex) = sorted[owner][lo..hi].
        let mut queue: std::collections::VecDeque<(NodeId, NodeId, u32, u32)> =
            std::collections::VecDeque::new();
        queue.push_back((tree.root(), NIL, 0, 0));

        while let Some((v, owner, lo, hi)) = queue.pop_front() {
            let vi = v as usize;
            // Split v's own children (C(v)): heads receive sibling
            // sub-ranges owned by v.
            let cs = &sorted[vi];
            let d = cs.len() as u32;
            if d >= 1 {
                let half = d / 2;
                let h1 = cs[0];
                vt.c_heads[vi][0] = h1;
                vt.relay_parent[h1 as usize] = v;
                vt.relay_round[h1 as usize] = 1;
                vt.max_round = vt.max_round.max(1);
                if d >= 2 {
                    let h2 = cs[half as usize];
                    vt.c_heads[vi][1] = h2;
                    vt.relay_parent[h2 as usize] = v;
                    vt.relay_round[h2 as usize] = 1;
                    queue.push_back((h1, v, 1, half));
                    queue.push_back((h2, v, half + 1, d));
                } else {
                    queue.push_back((h1, v, 1, 1));
                }
            }
            // Split v's appended range (A(v)): heads are v's siblings.
            let alen = hi.saturating_sub(lo);
            if alen >= 1 {
                let list = &sorted[owner as usize];
                let ahalf = alen / 2;
                let g1 = list[lo as usize];
                vt.a_heads[vi][0] = g1;
                vt.relay_parent[g1 as usize] = v;
                vt.relay_round[g1 as usize] = vt.relay_round[vi] + 1;
                vt.max_round = vt.max_round.max(vt.relay_round[g1 as usize]);
                if alen >= 2 {
                    let g2 = list[(lo + ahalf) as usize];
                    vt.a_heads[vi][1] = g2;
                    vt.relay_parent[g2 as usize] = v;
                    vt.relay_round[g2 as usize] = vt.relay_round[vi] + 1;
                    queue.push_back((g1, owner, lo + 1, lo + ahalf));
                    queue.push_back((g2, owner, lo + ahalf + 1, hi));
                } else {
                    queue.push_back((g1, owner, lo + 1, lo + 1));
                }
            }
        }
        vt
    }

    /// Relay parent of `v` (`NIL` at the root): the vertex that forwards
    /// `v`'s real parent's messages to `v`.
    pub fn relay_parent(&self, v: NodeId) -> NodeId {
        self.relay_parent[v as usize]
    }

    /// Relay round of `v`: broadcast hop count within its parent's
    /// sibling relay tree.
    pub fn relay_round(&self, v: NodeId) -> u32 {
        self.relay_round[v as usize]
    }

    /// Current heads `C(v)` (`NIL`-padded).
    pub fn current_heads(&self, v: NodeId) -> [NodeId; 2] {
        self.c_heads[v as usize]
    }

    /// Appended heads `A(v)` (`NIL`-padded).
    pub fn appended_heads(&self, v: NodeId) -> [NodeId; 2] {
        self.a_heads[v as usize]
    }

    /// Number of virtual children of `v` (current + appended heads).
    pub fn virtual_degree(&self, v: NodeId) -> u32 {
        let count = |hs: &[NodeId; 2]| hs.iter().filter(|&&h| h != NIL).count() as u32;
        count(&self.c_heads[v as usize]) + count(&self.a_heads[v as usize])
    }

    /// Maximum broadcast relay rounds (= `O(log Δ)`).
    pub fn max_round(&self) -> u32 {
        self.max_round
    }

    /// Number of vertices.
    pub fn n(&self) -> u32 {
        self.relay_parent.len() as u32
    }

    /// Charges the Fig. 4 reference-passing construction on the machine:
    /// bottom-up over the relay structure, every vertex exchanges a
    /// constant number of reference messages with its relay heads. `O(n)`
    /// energy and `O(log n)` depth (Theorem 3's construction cost).
    pub fn charge_construction(&self, m: &Machine, layout: &Layout) {
        // Round r vertices receive their range references from round r−1
        // adopters — the same balanced structure as a broadcast, plus a
        // constant-factor exchange (request + response).
        for round in 1..=self.max_round {
            let msgs: Vec<(Slot, Slot)> = (0..self.n())
                .filter(|&v| self.relay_round[v as usize] == round)
                .flat_map(|v| {
                    let p = self.relay_parent[v as usize];
                    let (a, b) = (layout.slot(p), layout.slot(v));
                    [(a, b), (b, a)]
                })
                .collect();
            m.round(&msgs);
            m.advance_all(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    /// Collects the *real* children of `p` reachable through the relay
    /// structure rooted at `p`'s current heads.
    fn relayed_children(vt: &VirtualTree, p: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = vt
            .current_heads(p)
            .into_iter()
            .filter(|&h| h != NIL)
            .collect();
        while let Some(x) = stack.pop() {
            out.push(x);
            for h in vt.appended_heads(x) {
                if h != NIL {
                    stack.push(h);
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn virtual_degree_at_most_four() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1u32, 2, 10, 500] {
            for t in [
                generators::star(n.max(1)),
                generators::uniform_random(n.max(2), &mut rng),
                generators::preferential_attachment(n.max(1), &mut rng),
            ] {
                let vt = VirtualTree::new(&t);
                for v in t.vertices() {
                    assert!(vt.virtual_degree(v) <= 4, "deg({v}) > 4");
                }
            }
        }
    }

    #[test]
    fn relay_covers_exactly_the_children() {
        let mut rng = StdRng::seed_from_u64(3);
        for t in [
            generators::star(64),
            generators::broom(100, 30),
            generators::preferential_attachment(400, &mut rng),
            generators::uniform_random(333, &mut rng),
        ] {
            let vt = VirtualTree::new(&t);
            for p in t.vertices() {
                let mut expect: Vec<NodeId> = t.children(p).to_vec();
                expect.sort_unstable();
                assert_eq!(relayed_children(&vt, p), expect, "parent {p}");
            }
        }
    }

    #[test]
    fn star_relay_is_logarithmic() {
        let t = generators::star(1025);
        let vt = VirtualTree::new(&t);
        // 1024 children: balanced halving gives ~log2(1024) rounds.
        assert!(vt.max_round() <= 12, "rounds {} > 12", vt.max_round());
        assert!(
            vt.max_round() >= 9,
            "rounds {} suspiciously small",
            vt.max_round()
        );
    }

    #[test]
    fn bounded_degree_trees_have_no_appended_heads() {
        let t = generators::perfect_kary(2, 6);
        let vt = VirtualTree::new(&t);
        for v in t.vertices() {
            assert_eq!(vt.appended_heads(v), [NIL, NIL], "vertex {v}");
            assert_eq!(vt.max_round(), 1);
        }
    }

    #[test]
    fn relay_rounds_consistent_with_parents() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = generators::preferential_attachment(1000, &mut rng);
        let vt = VirtualTree::new(&t);
        for v in t.vertices() {
            let rp = vt.relay_parent(v);
            if rp == NIL {
                assert_eq!(v, t.root());
                continue;
            }
            let r = vt.relay_round(v);
            if vt.current_heads(rp).contains(&v) {
                assert_eq!(r, 1, "current head {v}");
            } else {
                assert_eq!(r, vt.relay_round(rp) + 1, "appended head {v}");
            }
        }
    }

    #[test]
    fn construction_linear_energy() {
        let mut per_n = Vec::new();
        for log_n in [12u32, 14] {
            let n = 1u32 << log_n;
            let t = generators::star(n);
            let layout = Layout::light_first(&t, CurveKind::Hilbert);
            let m = layout.machine();
            let vt = VirtualTree::new(&t);
            vt.charge_construction(&m, &layout);
            per_n.push(m.report().energy as f64 / n as f64);
        }
        assert!(
            per_n[1] < per_n[0] * 1.5,
            "construction energy/n should be flat: {per_n:?}"
        );
    }

    #[test]
    fn single_vertex_virtual_tree() {
        let t = Tree::from_parents(0, vec![NIL]);
        let vt = VirtualTree::new(&t);
        assert_eq!(vt.virtual_degree(0), 0);
        assert_eq!(vt.max_round(), 0);
        assert_eq!(vt.relay_parent(0), NIL);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use spatial_tree::generators;

    proptest! {
        /// On any random tree: virtual degree ≤ 4, every non-root has a
        /// relay parent, and relay rounds are consistent with adoption
        /// depth.
        #[test]
        fn prop_virtual_tree_invariants(n in 2u32..400, seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = generators::uniform_random(n, &mut rng);
            let vt = VirtualTree::new(&t);
            for v in t.vertices() {
                prop_assert!(vt.virtual_degree(v) <= 4);
                if v == t.root() {
                    prop_assert_eq!(vt.relay_parent(v), NIL);
                } else {
                    let rp = vt.relay_parent(v);
                    prop_assert!(rp != NIL, "vertex {} unreachable", v);
                    // Relay parents are either the real parent or a
                    // sibling (same real parent).
                    let p = t.parent(v).unwrap();
                    prop_assert!(
                        rp == p || t.parent(rp) == Some(p),
                        "relay parent {} of {} is neither parent nor sibling",
                        rp, v
                    );
                }
            }
        }

        /// The relay forest spans every vertex exactly once (a spanning
        /// arborescence of the tree's vertex set).
        #[test]
        fn prop_relay_forest_spans(n in 2u32..300, seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = generators::preferential_attachment(n, &mut rng);
            let vt = VirtualTree::new(&t);
            let mut reached = vec![false; n as usize];
            let mut stack = vec![t.root()];
            reached[t.root() as usize] = true;
            while let Some(x) = stack.pop() {
                for h in vt.current_heads(x).into_iter().chain(vt.appended_heads(x)) {
                    if h != NIL {
                        prop_assert!(!reached[h as usize], "vertex {} adopted twice", h);
                        reached[h as usize] = true;
                        stack.push(h);
                    }
                }
            }
            prop_assert!(reached.iter().all(|&r| r));
        }
    }
}
