//! Precomputed CSR broadcast schedules over the virtual tree.
//!
//! [`crate::local_broadcast`] rebuilds its per-round message batches on
//! every call — one `Vec` per relay round. Algorithms that broadcast
//! repeatedly over the *same* tree (the batched-LCA engine broadcasts
//! twice per run, every run) instead precompute the relay rounds once
//! as a round-indexed CSR of `(from, to)` slot pairs and replay them.
//! Replaying charges the **identical** message batches — same energy,
//! messages, and depth evolution as the `Vec`-building path — without
//! any per-call allocation.

use crate::virtual_tree::VirtualTree;
use spatial_layout::Layout;
use spatial_model::{Machine, RoundCharger, Slot};
use spatial_tree::Tree;

/// Round-indexed CSR schedules for the TRANSFORM virtual tree: the
/// Fig. 4 construction exchange and the Theorem 3 local broadcast.
#[derive(Debug, Clone)]
pub struct BroadcastSchedule {
    /// Construction exchange pairs (request + response per vertex),
    /// all rounds back to back.
    construction: Vec<(Slot, Slot)>,
    /// End offset into `construction` after each round (one entry per
    /// relay round, including empty rounds, to replay faithfully).
    construction_ends: Vec<u32>,
    /// Broadcast delivery pairs (relay parent → vertex), all rounds
    /// back to back.
    rounds: Vec<(Slot, Slot)>,
    /// End offset into `rounds` after each round.
    round_ends: Vec<u32>,
}

impl BroadcastSchedule {
    /// Builds both schedules from a virtual tree and the layout its
    /// messages travel on.
    pub fn new(vt: &VirtualTree, layout: &Layout, tree: &Tree) -> Self {
        let n = vt.n();
        let max_round = vt.max_round();
        let mut construction = Vec::with_capacity(2 * n.saturating_sub(1) as usize);
        let mut construction_ends = Vec::with_capacity(max_round as usize);
        let mut rounds = Vec::with_capacity(n.saturating_sub(1) as usize);
        let mut round_ends = Vec::with_capacity(max_round as usize);
        for round in 1..=max_round {
            for v in 0..n {
                if v == tree.root() || vt.relay_round(v) != round {
                    continue;
                }
                let (p, c) = (layout.slot(vt.relay_parent(v)), layout.slot(v));
                construction.push((p, c));
                construction.push((c, p));
                rounds.push((p, c));
            }
            construction_ends.push(construction.len() as u32);
            round_ends.push(rounds.len() as u32);
        }
        BroadcastSchedule {
            construction,
            construction_ends,
            rounds,
            round_ends,
        }
    }

    /// Number of relay rounds in the schedule.
    pub fn num_rounds(&self) -> u32 {
        self.round_ends.len() as u32
    }

    /// The largest single round either replay charges, in messages —
    /// what a pre-sized [`spatial_model::LocalChargeScratch`] staging
    /// buffer needs to hold for the replays to stay allocation-free
    /// (construction rounds carry two pairs per vertex, so this can
    /// exceed the vertex count).
    pub fn max_round_len(&self) -> usize {
        let widest = |ends: &[u32]| {
            ends.iter()
                .scan(0u32, |start, &end| {
                    let len = end - *start;
                    *start = end;
                    Some(len)
                })
                .max()
                .unwrap_or(0) as usize
        };
        widest(&self.construction_ends).max(widest(&self.round_ends))
    }

    /// Replays the Fig. 4 reference-passing construction charges
    /// (mirror of [`VirtualTree::charge_construction`]): one machine
    /// round plus one synchronous step per relay round.
    pub fn charge_construction(&self, m: &Machine) {
        let mut m = m;
        self.charge_construction_into(&mut m);
    }

    /// [`BroadcastSchedule::charge_construction`] over any
    /// [`RoundCharger`] — the machine or a `LocalCharge` session.
    pub fn charge_construction_into<C: RoundCharger>(&self, charger: &mut C) {
        let mut start = 0usize;
        for &end in &self.construction_ends {
            charger.charge_round(&self.construction[start..end as usize]);
            charger.charge_advance_all(1);
            start = end as usize;
        }
    }

    /// Replays the local-broadcast delivery charges (mirror of the
    /// message pattern of [`crate::local_broadcast`]): one machine
    /// round per relay round, consecutive rounds chaining through the
    /// receivers' clocks.
    pub fn charge_broadcast(&self, m: &Machine) {
        let mut m = m;
        self.charge_broadcast_into(&mut m);
    }

    /// [`BroadcastSchedule::charge_broadcast`] over any
    /// [`RoundCharger`].
    pub fn charge_broadcast_into<C: RoundCharger>(&self, charger: &mut C) {
        let mut start = 0usize;
        for &end in &self.round_ends {
            charger.charge_round(&self.rounds[start..end as usize]);
            start = end as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_broadcast;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    fn setup(t: &Tree) -> (Layout, VirtualTree, BroadcastSchedule) {
        let layout = Layout::light_first(t, CurveKind::Hilbert);
        let vt = VirtualTree::new(t);
        let schedule = BroadcastSchedule::new(&vt, &layout, t);
        (layout, vt, schedule)
    }

    #[test]
    fn replay_matches_local_broadcast_charges() {
        let mut rng = StdRng::seed_from_u64(11);
        for t in [
            generators::star(100),
            generators::comb(64),
            generators::broom(90, 30),
            generators::preferential_attachment(400, &mut rng),
            generators::uniform_random(333, &mut rng),
        ] {
            let (layout, vt, schedule) = setup(&t);
            let values: Vec<u64> = (0..t.n() as u64).collect();

            let m_vec = layout.machine();
            local_broadcast(&m_vec, &layout, &vt, &t, &values);

            let m_csr = layout.machine();
            schedule.charge_broadcast(&m_csr);

            assert_eq!(m_vec.report(), m_csr.report(), "n = {}", t.n());
        }
    }

    #[test]
    fn replay_matches_construction_charges() {
        let mut rng = StdRng::seed_from_u64(13);
        for t in [
            generators::star(200),
            generators::uniform_random(250, &mut rng),
        ] {
            let (layout, vt, schedule) = setup(&t);

            let m_vec = layout.machine();
            vt.charge_construction(&m_vec, &layout);

            let m_csr = layout.machine();
            schedule.charge_construction(&m_csr);

            assert_eq!(m_vec.report(), m_csr.report(), "n = {}", t.n());
        }
    }

    #[test]
    fn repeated_replays_accumulate() {
        // Two replays charge exactly twice the messages of one — the
        // LCA engine broadcasts ranges and heavy-child ids back to back.
        let t = generators::star(64);
        let (layout, _, schedule) = setup(&t);
        let m1 = layout.machine();
        schedule.charge_broadcast(&m1);
        let once = m1.report();
        let m2 = layout.machine();
        schedule.charge_broadcast(&m2);
        schedule.charge_broadcast(&m2);
        assert_eq!(m2.report().messages, 2 * once.messages);
        assert_eq!(m2.report().energy, 2 * once.energy);
    }

    #[test]
    fn single_vertex_schedule_is_empty() {
        let t = Tree::from_parents(0, vec![spatial_tree::NIL]);
        let (layout, _, schedule) = setup(&t);
        assert_eq!(schedule.num_rounds(), 0);
        let m = layout.machine();
        schedule.charge_construction(&m);
        schedule.charge_broadcast(&m);
        assert_eq!(m.report(), spatial_model::CostReport::default());
    }
}
