//! Local broadcast and local reduce over the virtual tree (Theorem 3).
//!
//! *Local broadcast*: every vertex `v` sends one identical message to all
//! its children. A child receives its parent's message either directly
//! (current head) or relayed by the sibling that adopted it (appended
//! head); relays happen strictly after the relaying sibling has received
//! the message itself, which the machine's dependency clocks capture via
//! per-round message batches.
//!
//! *Local reduce*: every parent receives the reduction of its children's
//! messages. Contributions flow up the same relay structure; because the
//! relay tree covers contiguous sibling ranges, combining `msg(x) ⊕
//! contrib(first head) ⊕ contrib(second head)` preserves sibling order,
//! so any associative operator works (commutativity not required).

use crate::virtual_tree::VirtualTree;
use spatial_layout::Layout;
use spatial_model::{Machine, Slot};
use spatial_tree::{NodeId, Tree, NIL};

/// Local broadcast: returns `received[v] = Some(values[parent(v)])` for
/// every non-root vertex, charging `O(n)` energy and `O(log n)` depth on
/// an energy-bound layout.
pub fn local_broadcast<T: Copy>(
    m: &Machine,
    layout: &Layout,
    vt: &VirtualTree,
    tree: &Tree,
    values: &[T],
) -> Vec<Option<T>> {
    let n = tree.n();
    assert_eq!(values.len() as u32, n, "one value per vertex");
    // Relay rounds: round r delivers to every vertex whose relay_round
    // is r. Within a round all messages are simultaneous.
    for round in 1..=vt.max_round() {
        let msgs: Vec<(Slot, Slot)> = (0..n)
            .filter(|&v| v != tree.root() && vt.relay_round(v) == round)
            .map(|v| (layout.slot(vt.relay_parent(v)), layout.slot(v)))
            .collect();
        m.round(&msgs);
    }
    // The delivered value is always the real parent's.
    (0..n)
        .map(|v| tree.parent(v).map(|p| values[p as usize]))
        .collect()
}

/// Local reduce: returns `result[p] = Some(⊕ values[c] over children c
/// in light-first sibling order)` for every non-leaf vertex, charging
/// `O(n)` energy and `O(log n)` depth on an energy-bound layout.
pub fn local_reduce<T, F>(
    m: &Machine,
    layout: &Layout,
    vt: &VirtualTree,
    tree: &Tree,
    values: &[T],
    op: &F,
) -> Vec<Option<T>>
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let n = tree.n();
    assert_eq!(values.len() as u32, n, "one value per vertex");

    // Send round of x = 1 + max send round of its appended heads (they
    // must deliver their sibling-range contributions first).
    let mut send_round = vec![1u32; n as usize];
    // Appended heads always have a strictly larger relay_round than
    // their adopter, so processing vertices by decreasing relay_round
    // finalizes heads before adopters.
    let mut by_round: Vec<NodeId> = (0..n).filter(|&v| v != tree.root()).collect();
    by_round.sort_by_key(|&v| std::cmp::Reverse(vt.relay_round(v)));
    let mut max_send = 0u32;
    for &x in &by_round {
        for h in vt.appended_heads(x) {
            if h != NIL {
                send_round[x as usize] = send_round[x as usize].max(send_round[h as usize] + 1);
            }
        }
        max_send = max_send.max(send_round[x as usize]);
    }

    // Contributions in the same bottom-up order.
    let mut contrib: Vec<T> = values.to_vec();
    for &x in &by_round {
        // contrib(x) = values[x] ⊕ contrib(head₁) ⊕ contrib(head₂),
        // which covers x's contiguous sibling range in order.
        let mut acc = values[x as usize];
        for h in vt.appended_heads(x) {
            if h != NIL {
                acc = op(acc, contrib[h as usize]);
            }
        }
        contrib[x as usize] = acc;
    }

    // Charge the upward messages in send-round batches.
    for round in 1..=max_send {
        let msgs: Vec<(Slot, Slot)> = by_round
            .iter()
            .copied()
            .filter(|&x| send_round[x as usize] == round)
            .map(|x| (layout.slot(x), layout.slot(vt.relay_parent(x))))
            .collect();
        m.round(&msgs);
    }

    // Results: parents combine their current heads' contributions (the
    // two heads cover the full child range, in order).
    (0..n)
        .map(|p| {
            let [h1, h2] = vt.current_heads(p);
            match (h1, h2) {
                (NIL, _) => None,
                (a, NIL) => Some(contrib[a as usize]),
                (a, b) => Some(op(contrib[a as usize], contrib[b as usize])),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    fn setup(t: &Tree) -> (Machine, Layout, VirtualTree) {
        let layout = Layout::light_first(t, CurveKind::Hilbert);
        let m = layout.machine();
        let vt = VirtualTree::new(t);
        (m, layout, vt)
    }

    #[test]
    fn broadcast_delivers_parent_values() {
        let mut rng = StdRng::seed_from_u64(2);
        for t in [
            generators::star(50),
            generators::comb(60),
            generators::uniform_random(200, &mut rng),
        ] {
            let (m, layout, vt) = setup(&t);
            let values: Vec<u64> = (0..t.n() as u64).map(|v| v * 10).collect();
            let got = local_broadcast(&m, &layout, &vt, &t, &values);
            for v in t.vertices() {
                match t.parent(v) {
                    None => assert_eq!(got[v as usize], None),
                    Some(p) => assert_eq!(got[v as usize], Some(p as u64 * 10)),
                }
            }
        }
    }

    #[test]
    fn reduce_sums_children() {
        let mut rng = StdRng::seed_from_u64(4);
        for t in [
            generators::star(50),
            generators::broom(80, 20),
            generators::preferential_attachment(300, &mut rng),
        ] {
            let (m, layout, vt) = setup(&t);
            let values: Vec<u64> = (0..t.n() as u64).map(|v| v + 1).collect();
            let got = local_reduce(&m, &layout, &vt, &t, &values, &|a, b| a + b);
            for v in t.vertices() {
                let expect: u64 = t.children(v).iter().map(|&c| c as u64 + 1).sum();
                if t.is_leaf(v) {
                    assert_eq!(got[v as usize], None, "leaf {v}");
                } else {
                    assert_eq!(got[v as usize], Some(expect), "vertex {v}");
                }
            }
        }
    }

    #[test]
    fn reduce_ordered_noncommutative() {
        // Affine-map composition: associative but *not* commutative.
        // Children must combine in light-first sibling order.
        let compose = |f: (u64, u64), g: (u64, u64)| {
            (
                f.0.wrapping_mul(g.0),
                f.0.wrapping_mul(g.1).wrapping_add(f.1),
            )
        };
        let t = generators::star(6);
        let (m, layout, vt) = setup(&t);
        // All leaf subtree sizes are 1 → sibling order is by id: 1..6.
        let values: Vec<(u64, u64)> = (0..6u64).map(|v| (2 * v + 1, 3 * v + 7)).collect();
        let got = local_reduce(&m, &layout, &vt, &t, &values, &compose);
        let expect = values[1..].iter().copied().reduce(compose).unwrap();
        assert_eq!(got[0], Some(expect));
    }

    #[test]
    fn theorem3_star_linear_energy_log_depth() {
        let mut per_n = Vec::new();
        for log_n in [12u32, 14] {
            let n = 1u32 << log_n;
            let t = generators::star(n);
            let (m, layout, vt) = setup(&t);
            let values = vec![1u64; n as usize];
            local_broadcast(&m, &layout, &vt, &t, &values);
            let r = m.report();
            per_n.push(r.energy as f64 / n as f64);
            assert!(
                r.depth <= 2 * log_n as u64 + 4,
                "depth {} not O(log n) at n=2^{log_n}",
                r.depth
            );
        }
        assert!(
            per_n[1] < per_n[0] * 1.5,
            "broadcast energy/n must stay flat: {per_n:?}"
        );
    }

    #[test]
    fn direct_messaging_on_star_is_superlinear() {
        // The baseline the virtual tree beats: direct parent→child
        // messages on a star cost Θ(n^{3/2}) total.
        let n = 1u32 << 14;
        let t = generators::star(n);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let direct = spatial_layout::local_kernel_energy(&t, &layout);
        let (m, layout2, vt) = setup(&t);
        local_broadcast(&m, &layout2, &vt, &t, &vec![0u64; n as usize]);
        let relay = m.report().energy;
        assert!(
            direct > 10 * relay,
            "direct {direct} should dwarf relayed {relay}"
        );
    }

    #[test]
    fn reduce_depth_logarithmic_on_star() {
        let n = 1u32 << 12;
        let t = generators::star(n);
        let (m, layout, vt) = setup(&t);
        local_reduce(&m, &layout, &vt, &t, &vec![1u64; n as usize], &|a, b| a + b);
        assert!(m.report().depth <= 2 * 12 + 4);
    }

    #[test]
    fn single_vertex_noops() {
        let t = Tree::from_parents(0, vec![NIL]);
        let (m, layout, vt) = setup(&t);
        assert_eq!(local_broadcast(&m, &layout, &vt, &t, &[7u64]), vec![None]);
        assert_eq!(
            local_reduce(&m, &layout, &vt, &t, &[7u64], &|a, b| a + b),
            vec![None]
        );
        assert_eq!(m.report().energy, 0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use spatial_model::{CurveKind, MachineBuilder};
    use spatial_tree::generators;

    /// White-box: a star's local broadcast uses exactly n−1 relay
    /// messages (one per child), each received after its relay's own
    /// receipt.
    #[test]
    fn star_broadcast_trace_is_a_relay_tree() {
        let t = generators::star(16);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = MachineBuilder::on_curve(CurveKind::Hilbert, 16)
            .trace(true)
            .build();
        let vt = VirtualTree::new(&t);
        local_broadcast(&machine, &layout, &vt, &t, &[7u64; 16]);
        let trace = machine.take_trace();
        assert_eq!(trace.len(), 15, "one delivery per child");
        // Every vertex receives exactly once.
        let mut received = std::collections::HashSet::new();
        for e in &trace {
            assert!(received.insert(e.to), "slot {} delivered twice", e.to);
        }
        // The root's slot never receives.
        assert!(!received.contains(&layout.slot(0)));
        // Relay depths: delivered in ≤ ⌈log₂ 15⌉ + 1 rounds.
        let max_depth = trace.iter().map(|e| e.depth_after).max().unwrap();
        assert!(max_depth <= 5, "relay depth {max_depth} too large");
    }
}
