//! Balanced relay charging for arbitrary participant sets.
//!
//! The treefix RAKE operation (§V-A2) reduces the partial sums of a
//! subset of a vertex's children — possibly unboundedly many — into the
//! parent. Under O(1) memory, that reduction travels a balanced binary
//! relay over the participants (in their light-first sibling order, so
//! the participants are near-contiguous on the curve). This module
//! charges such relays without materializing a full [`crate::VirtualTree`]
//! for the shrinking contracted tree.

use spatial_model::{Machine, Slot};

/// Charges a balanced binary *reduce* relay: `participants` combine
/// pairwise (in slice order) and the result arrives at `target`.
///
/// Energy: the distance-weighted relay volume; depth: `⌈log₂ k⌉ + 1`
/// machine rounds for `k` participants. Charges nothing for an empty
/// participant set.
pub fn charge_reduce_relay(m: &Machine, participants: &[Slot], target: Slot) {
    if participants.is_empty() {
        return;
    }
    // Bottom-up halving: in each round, the i-th surviving participant
    // with odd index sends to its even-indexed neighbour.
    let mut current: Vec<Slot> = participants.to_vec();
    while current.len() > 1 {
        let mut msgs = Vec::with_capacity(current.len() / 2);
        let mut next = Vec::with_capacity(current.len().div_ceil(2));
        for pair in current.chunks(2) {
            if pair.len() == 2 {
                msgs.push((pair[1], pair[0]));
            }
            next.push(pair[0]);
        }
        m.round(&msgs);
        current = next;
    }
    m.send(current[0], target);
}

/// Charges a balanced binary *broadcast* relay: a message from `source`
/// reaches every participant (mirror of [`charge_reduce_relay`]).
pub fn charge_broadcast_relay(m: &Machine, source: Slot, participants: &[Slot]) {
    if participants.is_empty() {
        return;
    }
    m.send(source, participants[0]);
    // Top-down doubling over the slice: the holder set doubles each
    // round, each holder forwarding to the midpoint of its segment.
    let mut segments: Vec<(usize, usize)> = vec![(0, participants.len())];
    while !segments.is_empty() {
        let mut msgs = Vec::new();
        let mut next = Vec::new();
        for (lo, hi) in segments {
            if hi - lo <= 1 {
                continue;
            }
            let mid = lo + (hi - lo) / 2;
            msgs.push((participants[lo], participants[mid]));
            next.push((lo, mid));
            next.push((mid, hi));
        }
        if msgs.is_empty() {
            break;
        }
        m.round(&msgs);
        segments = next;
    }
}

/// Charges many independent reduce relays *simultaneously*: all groups
/// advance level by level, each level being one machine round, so
/// relays of different groups never chain through shared endpoints
/// (parent `i`'s child may be parent `i+1`'s source — the messages are
/// still concurrent).
pub fn charge_reduce_relays(m: &Machine, groups: &mut [(Vec<Slot>, Slot)]) {
    let mut done = vec![false; groups.len()];
    loop {
        let mut msgs = Vec::new();
        for (gi, (current, target)) in groups.iter_mut().enumerate() {
            if done[gi] {
                continue;
            }
            if current.len() <= 1 {
                if let Some(&last) = current.first() {
                    msgs.push((last, *target));
                }
                done[gi] = true;
                continue;
            }
            let mut next = Vec::with_capacity(current.len().div_ceil(2));
            for pair in current.chunks(2) {
                if pair.len() == 2 {
                    msgs.push((pair[1], pair[0]));
                }
                next.push(pair[0]);
            }
            *current = next;
        }
        if msgs.is_empty() {
            break;
        }
        m.round(&msgs);
    }
}

/// Charges many independent broadcast relays simultaneously (mirror of
/// [`charge_reduce_relays`]).
pub fn charge_broadcast_relays(m: &Machine, groups: &[(Slot, Vec<Slot>)]) {
    // Round 0: every source reaches its first participant.
    let first: Vec<(Slot, Slot)> = groups
        .iter()
        .filter(|(_, parts)| !parts.is_empty())
        .map(|(src, parts)| (*src, parts[0]))
        .collect();
    if first.is_empty() {
        return;
    }
    m.round(&first);
    // Then segment doubling, one machine round per level across all
    // groups.
    let mut segments: Vec<(usize, usize, usize)> = groups
        .iter()
        .enumerate()
        .filter(|(_, (_, parts))| parts.len() > 1)
        .map(|(gi, (_, parts))| (gi, 0usize, parts.len()))
        .collect();
    while !segments.is_empty() {
        let mut msgs = Vec::new();
        let mut next = Vec::new();
        for (gi, lo, hi) in segments {
            if hi - lo <= 1 {
                continue;
            }
            let parts = &groups[gi].1;
            let mid = lo + (hi - lo) / 2;
            msgs.push((parts[lo], parts[mid]));
            next.push((gi, lo, mid));
            next.push((gi, mid, hi));
        }
        if msgs.is_empty() {
            break;
        }
        m.round(&msgs);
        segments = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_model::{CurveKind, Machine};

    fn line(n: u32) -> Machine {
        Machine::from_points(
            (0..n)
                .map(|i| spatial_model::GridPoint::new(i, 0))
                .collect(),
        )
    }

    #[test]
    fn empty_participants_free() {
        let m = line(4);
        charge_reduce_relay(&m, &[], 0);
        charge_broadcast_relay(&m, 0, &[]);
        assert_eq!(m.report().energy, 0);
        assert_eq!(m.report().messages, 0);
    }

    #[test]
    fn single_participant_one_message() {
        let m = line(4);
        charge_reduce_relay(&m, &[3], 0);
        assert_eq!(m.report().messages, 1);
        assert_eq!(m.report().energy, 3);
    }

    #[test]
    fn reduce_relay_message_count() {
        // k participants → k messages (k−1 merges + 1 to target).
        for k in [1u32, 2, 5, 16, 33] {
            let m = line(64);
            let parts: Vec<Slot> = (1..=k).collect();
            charge_reduce_relay(&m, &parts, 0);
            assert_eq!(m.report().messages as u32, k, "k={k}");
        }
    }

    #[test]
    fn reduce_relay_depth_logarithmic() {
        let m = line(1024);
        let parts: Vec<Slot> = (0..1000).collect();
        charge_reduce_relay(&m, &parts, 1023);
        let d = m.report().depth;
        assert!(d <= 12, "depth {d} > ⌈log₂ 1000⌉ + 2");
        assert!(d >= 10);
    }

    #[test]
    fn broadcast_relay_reaches_all_with_log_depth() {
        let m = line(1024);
        let parts: Vec<Slot> = (1..1001).collect();
        charge_broadcast_relay(&m, 0, &parts);
        assert_eq!(m.report().messages, 1000);
        assert!(m.report().depth <= 12);
    }

    #[test]
    fn batched_broadcasts_do_not_chain() {
        // A chain of single-child "relays": parent i → child i+1. As
        // independent per-parent calls they would chain to depth n; the
        // batched call keeps them concurrent.
        let m = line(64);
        let groups: Vec<(Slot, Vec<Slot>)> = (0..63).map(|i| (i, vec![i + 1])).collect();
        charge_broadcast_relays(&m, &groups);
        assert_eq!(m.report().depth, 1, "independent broadcasts are parallel");
        assert_eq!(m.report().messages, 63);
    }

    #[test]
    fn batched_reduces_do_not_chain() {
        let m = line(64);
        let mut groups: Vec<(Vec<Slot>, Slot)> = (0..63).map(|i| (vec![i + 1], i)).collect();
        charge_reduce_relays(&m, &mut groups);
        assert_eq!(m.report().depth, 1);
        assert_eq!(m.report().messages, 63);
    }

    #[test]
    fn batched_matches_single_counts() {
        // One large group in the batched API = the single-group charge.
        let m1 = line(256);
        charge_reduce_relay(&m1, &(1..200).collect::<Vec<_>>(), 0);
        let m2 = line(256);
        let mut groups = vec![((1..200).collect::<Vec<_>>(), 0 as Slot)];
        charge_reduce_relays(&m2, &mut groups);
        assert_eq!(m1.report().messages, m2.report().messages);
        assert_eq!(m1.report().energy, m2.report().energy);
    }

    #[test]
    fn batched_mixed_group_sizes() {
        let m = line(128);
        let groups: Vec<(Slot, Vec<Slot>)> = vec![
            (0, vec![]),
            (1, vec![2]),
            (3, (4..20).collect()),
            (50, (51..128).collect()),
        ];
        charge_broadcast_relays(&m, &groups);
        // 0 messages + 1 + 16 + 77.
        assert_eq!(m.report().messages, 94);
        assert!(m.report().depth <= 8);
    }

    #[test]
    fn contiguous_participants_linear_energy() {
        // Contiguous participants on a curve: relay energy O(k) — the
        // Theorem 1 recursion at work.
        let machine = Machine::on_curve(CurveKind::Hilbert, 4096);
        let parts: Vec<Slot> = (1..4096).collect();
        charge_reduce_relay(&machine, &parts, 0);
        let per = machine.report().energy as f64 / 4096.0;
        assert!(per < 8.0, "relay energy per element {per} not O(1)");
    }
}
