//! Balanced relay charging for arbitrary participant sets.
//!
//! The treefix RAKE operation (§V-A2) reduces the partial sums of a
//! subset of a vertex's children — possibly unboundedly many — into the
//! parent. Under O(1) memory, that reduction travels a balanced binary
//! relay over the participants (in their light-first sibling order, so
//! the participants are near-contiguous on the curve). This module
//! charges such relays without materializing a full [`crate::VirtualTree`]
//! for the shrinking contracted tree.

use spatial_model::{Machine, RoundCharger, Slot};

/// Charges a balanced binary *reduce* relay: `participants` combine
/// pairwise (in slice order) and the result arrives at `target`.
///
/// Energy: the distance-weighted relay volume; depth: `⌈log₂ k⌉ + 1`
/// machine rounds for `k` participants. Charges nothing for an empty
/// participant set.
pub fn charge_reduce_relay(m: &Machine, participants: &[Slot], target: Slot) {
    if participants.is_empty() {
        return;
    }
    // Bottom-up halving: in each round, the i-th surviving participant
    // with odd index sends to its even-indexed neighbour.
    let mut current: Vec<Slot> = participants.to_vec();
    while current.len() > 1 {
        let mut msgs = Vec::with_capacity(current.len() / 2);
        let mut next = Vec::with_capacity(current.len().div_ceil(2));
        for pair in current.chunks(2) {
            if pair.len() == 2 {
                msgs.push((pair[1], pair[0]));
            }
            next.push(pair[0]);
        }
        m.round(&msgs);
        current = next;
    }
    m.send(current[0], target);
}

/// Charges a balanced binary *broadcast* relay: a message from `source`
/// reaches every participant (mirror of [`charge_reduce_relay`]).
pub fn charge_broadcast_relay(m: &Machine, source: Slot, participants: &[Slot]) {
    if participants.is_empty() {
        return;
    }
    m.send(source, participants[0]);
    // Top-down doubling over the slice: the holder set doubles each
    // round, each holder forwarding to the midpoint of its segment.
    let mut segments: Vec<(usize, usize)> = vec![(0, participants.len())];
    while !segments.is_empty() {
        let mut msgs = Vec::new();
        let mut next = Vec::new();
        for (lo, hi) in segments {
            if hi - lo <= 1 {
                continue;
            }
            let mid = lo + (hi - lo) / 2;
            msgs.push((participants[lo], participants[mid]));
            next.push((lo, mid));
            next.push((mid, hi));
        }
        if msgs.is_empty() {
            break;
        }
        m.round(&msgs);
        segments = next;
    }
}

/// Charges many independent reduce relays *simultaneously*: all groups
/// advance level by level, each level being one machine round, so
/// relays of different groups never chain through shared endpoints
/// (parent `i`'s child may be parent `i+1`'s source — the messages are
/// still concurrent).
pub fn charge_reduce_relays(m: &Machine, groups: &mut [(Vec<Slot>, Slot)]) {
    let mut done = vec![false; groups.len()];
    loop {
        let mut msgs = Vec::new();
        for (gi, (current, target)) in groups.iter_mut().enumerate() {
            if done[gi] {
                continue;
            }
            if current.len() <= 1 {
                if let Some(&last) = current.first() {
                    msgs.push((last, *target));
                }
                done[gi] = true;
                continue;
            }
            let mut next = Vec::with_capacity(current.len().div_ceil(2));
            for pair in current.chunks(2) {
                if pair.len() == 2 {
                    msgs.push((pair[1], pair[0]));
                }
                next.push(pair[0]);
            }
            *current = next;
        }
        if msgs.is_empty() {
            break;
        }
        m.round(&msgs);
    }
}

/// Charges many independent broadcast relays simultaneously (mirror of
/// [`charge_reduce_relays`]).
pub fn charge_broadcast_relays(m: &Machine, groups: &[(Slot, Vec<Slot>)]) {
    // Round 0: every source reaches its first participant.
    let first: Vec<(Slot, Slot)> = groups
        .iter()
        .filter(|(_, parts)| !parts.is_empty())
        .map(|(src, parts)| (*src, parts[0]))
        .collect();
    if first.is_empty() {
        return;
    }
    m.round(&first);
    // Then segment doubling, one machine round per level across all
    // groups.
    let mut segments: Vec<(usize, usize, usize)> = groups
        .iter()
        .enumerate()
        .filter(|(_, (_, parts))| parts.len() > 1)
        .map(|(gi, (_, parts))| (gi, 0usize, parts.len()))
        .collect();
    while !segments.is_empty() {
        let mut msgs = Vec::new();
        let mut next = Vec::new();
        for (gi, lo, hi) in segments {
            if hi - lo <= 1 {
                continue;
            }
            let parts = &groups[gi].1;
            let mid = lo + (hi - lo) / 2;
            msgs.push((parts[lo], parts[mid]));
            next.push((gi, lo, mid));
            next.push((gi, mid, hi));
        }
        if msgs.is_empty() {
            break;
        }
        m.round(&msgs);
        segments = next;
    }
}

/// Reusable buffers for the CSR relay charging functions. One instance
/// serves any number of calls; after it has grown to the largest
/// participant set (or been pre-sized with
/// [`RelayScratch::with_capacity`]), relay charging performs **zero
/// heap allocation** — the property the treefix contraction engine
/// relies on.
#[derive(Debug, Default)]
pub struct RelayScratch {
    msgs: Vec<(Slot, Slot)>,
    seg: Vec<(u32, u32)>,
    seg_next: Vec<(u32, u32)>,
    work: Vec<Slot>,
    group_len: Vec<u32>,
}

impl RelayScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch pre-sized for up to `participants` total relay
    /// participants across up to `groups` groups, so no call ever
    /// allocates.
    pub fn with_capacity(participants: usize, groups: usize) -> Self {
        RelayScratch {
            msgs: Vec::with_capacity(participants + groups),
            seg: Vec::with_capacity(participants + 1),
            seg_next: Vec::with_capacity(participants + 1),
            work: Vec::with_capacity(participants),
            group_len: Vec::with_capacity(groups),
        }
    }

    /// Grows the scratch to the [`RelayScratch::with_capacity`] shape
    /// (never shrinks) — the engine-pool `reserve` hook, so a capacity
    /// growth keeps later charged runs allocation-free.
    pub fn reserve(&mut self, participants: usize, groups: usize) {
        fn grow<T>(buf: &mut Vec<T>, cap: usize) {
            buf.reserve(cap.saturating_sub(buf.len()));
        }
        grow(&mut self.msgs, participants + groups);
        grow(&mut self.seg, participants + 1);
        grow(&mut self.seg_next, participants + 1);
        grow(&mut self.work, participants);
        grow(&mut self.group_len, groups);
    }
}

/// CSR variant of [`charge_broadcast_relays`]: group `g` broadcasts
/// from `sources[g]` to participants `parts[offsets[g]..offsets[g+1]]`.
/// Charges the identical message set, level structure, energy and depth
/// as the `Vec`-of-`Vec`s API, without allocating (given a warm
/// `scratch`).
pub fn charge_broadcast_relays_csr(
    m: &Machine,
    sources: &[Slot],
    parts: &[Slot],
    offsets: &[u32],
    scratch: &mut RelayScratch,
) {
    let mut m = m;
    charge_broadcast_relays_csr_into(&mut m, sources, parts, offsets, scratch);
}

/// [`charge_broadcast_relays_csr`] over any [`RoundCharger`] — the
/// machine itself or a `LocalCharge` session (identical charges, no
/// per-message atomics).
pub fn charge_broadcast_relays_csr_into<C: RoundCharger>(
    charger: &mut C,
    sources: &[Slot],
    parts: &[Slot],
    offsets: &[u32],
    scratch: &mut RelayScratch,
) {
    debug_assert_eq!(offsets.len(), sources.len() + 1);
    // Round 0: every source reaches its first participant.
    scratch.msgs.clear();
    for (g, &src) in sources.iter().enumerate() {
        if offsets[g] < offsets[g + 1] {
            scratch.msgs.push((src, parts[offsets[g] as usize]));
        }
    }
    if scratch.msgs.is_empty() {
        return;
    }
    charger.charge_round(&scratch.msgs);

    // Segment doubling, one machine round per level across all groups.
    // Segments are absolute [lo, hi) index ranges into `parts`.
    scratch.seg.clear();
    for g in 0..sources.len() {
        if offsets[g + 1] - offsets[g] > 1 {
            scratch.seg.push((offsets[g], offsets[g + 1]));
        }
    }
    while !scratch.seg.is_empty() {
        scratch.msgs.clear();
        scratch.seg_next.clear();
        for &(lo, hi) in &scratch.seg {
            if hi - lo <= 1 {
                continue;
            }
            let mid = lo + (hi - lo) / 2;
            scratch.msgs.push((parts[lo as usize], parts[mid as usize]));
            scratch.seg_next.push((lo, mid));
            scratch.seg_next.push((mid, hi));
        }
        if scratch.msgs.is_empty() {
            break;
        }
        charger.charge_round(&scratch.msgs);
        std::mem::swap(&mut scratch.seg, &mut scratch.seg_next);
    }
}

/// CSR variant of [`charge_reduce_relays`]: group `g` reduces
/// participants `parts[offsets[g]..offsets[g+1]]` into `targets[g]`.
/// Charges identically to the `Vec`-of-`Vec`s API, without allocating
/// (given a warm `scratch`).
pub fn charge_reduce_relays_csr(
    m: &Machine,
    parts: &[Slot],
    offsets: &[u32],
    targets: &[Slot],
    scratch: &mut RelayScratch,
) {
    let mut m = m;
    charge_reduce_relays_csr_into(&mut m, parts, offsets, targets, scratch);
}

/// [`charge_reduce_relays_csr`] over any [`RoundCharger`].
pub fn charge_reduce_relays_csr_into<C: RoundCharger>(
    charger: &mut C,
    parts: &[Slot],
    offsets: &[u32],
    targets: &[Slot],
    scratch: &mut RelayScratch,
) {
    debug_assert_eq!(offsets.len(), targets.len() + 1);
    // Copy participants into the halving work buffer; group g's
    // survivors live at work[offsets[g] .. offsets[g] + group_len[g]].
    scratch.work.clear();
    scratch.work.extend_from_slice(parts);
    scratch.group_len.clear();
    scratch
        .group_len
        .extend((0..targets.len()).map(|g| offsets[g + 1] - offsets[g]));

    loop {
        scratch.msgs.clear();
        for (g, &target) in targets.iter().enumerate() {
            let k = scratch.group_len[g];
            let start = offsets[g] as usize;
            match k {
                0 => {}
                1 => {
                    scratch.msgs.push((scratch.work[start], target));
                    scratch.group_len[g] = 0;
                }
                _ => {
                    // Pair up (work[2j+1] → work[2j]); survivors are the
                    // even-indexed elements, compacted in place.
                    let k = k as usize;
                    let survivors = k.div_ceil(2);
                    for j in 0..k / 2 {
                        scratch
                            .msgs
                            .push((scratch.work[start + 2 * j + 1], scratch.work[start + 2 * j]));
                    }
                    for j in 0..survivors {
                        scratch.work[start + j] = scratch.work[start + 2 * j];
                    }
                    scratch.group_len[g] = survivors as u32;
                }
            }
        }
        if scratch.msgs.is_empty() {
            break;
        }
        charger.charge_round(&scratch.msgs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_model::{CurveKind, Machine};

    fn line(n: u32) -> Machine {
        Machine::from_points(
            (0..n)
                .map(|i| spatial_model::GridPoint::new(i, 0))
                .collect(),
        )
    }

    #[test]
    fn empty_participants_free() {
        let m = line(4);
        charge_reduce_relay(&m, &[], 0);
        charge_broadcast_relay(&m, 0, &[]);
        assert_eq!(m.report().energy, 0);
        assert_eq!(m.report().messages, 0);
    }

    #[test]
    fn single_participant_one_message() {
        let m = line(4);
        charge_reduce_relay(&m, &[3], 0);
        assert_eq!(m.report().messages, 1);
        assert_eq!(m.report().energy, 3);
    }

    #[test]
    fn reduce_relay_message_count() {
        // k participants → k messages (k−1 merges + 1 to target).
        for k in [1u32, 2, 5, 16, 33] {
            let m = line(64);
            let parts: Vec<Slot> = (1..=k).collect();
            charge_reduce_relay(&m, &parts, 0);
            assert_eq!(m.report().messages as u32, k, "k={k}");
        }
    }

    #[test]
    fn reduce_relay_depth_logarithmic() {
        let m = line(1024);
        let parts: Vec<Slot> = (0..1000).collect();
        charge_reduce_relay(&m, &parts, 1023);
        let d = m.report().depth;
        assert!(d <= 12, "depth {d} > ⌈log₂ 1000⌉ + 2");
        assert!(d >= 10);
    }

    #[test]
    fn broadcast_relay_reaches_all_with_log_depth() {
        let m = line(1024);
        let parts: Vec<Slot> = (1..1001).collect();
        charge_broadcast_relay(&m, 0, &parts);
        assert_eq!(m.report().messages, 1000);
        assert!(m.report().depth <= 12);
    }

    #[test]
    fn batched_broadcasts_do_not_chain() {
        // A chain of single-child "relays": parent i → child i+1. As
        // independent per-parent calls they would chain to depth n; the
        // batched call keeps them concurrent.
        let m = line(64);
        let groups: Vec<(Slot, Vec<Slot>)> = (0..63).map(|i| (i, vec![i + 1])).collect();
        charge_broadcast_relays(&m, &groups);
        assert_eq!(m.report().depth, 1, "independent broadcasts are parallel");
        assert_eq!(m.report().messages, 63);
    }

    #[test]
    fn batched_reduces_do_not_chain() {
        let m = line(64);
        let mut groups: Vec<(Vec<Slot>, Slot)> = (0..63).map(|i| (vec![i + 1], i)).collect();
        charge_reduce_relays(&m, &mut groups);
        assert_eq!(m.report().depth, 1);
        assert_eq!(m.report().messages, 63);
    }

    #[test]
    fn batched_matches_single_counts() {
        // One large group in the batched API = the single-group charge.
        let m1 = line(256);
        charge_reduce_relay(&m1, &(1..200).collect::<Vec<_>>(), 0);
        let m2 = line(256);
        let mut groups = vec![((1..200).collect::<Vec<_>>(), 0 as Slot)];
        charge_reduce_relays(&m2, &mut groups);
        assert_eq!(m1.report().messages, m2.report().messages);
        assert_eq!(m1.report().energy, m2.report().energy);
    }

    #[test]
    fn batched_mixed_group_sizes() {
        let m = line(128);
        let groups: Vec<(Slot, Vec<Slot>)> = vec![
            (0, vec![]),
            (1, vec![2]),
            (3, (4..20).collect()),
            (50, (51..128).collect()),
        ];
        charge_broadcast_relays(&m, &groups);
        // 0 messages + 1 + 16 + 77.
        assert_eq!(m.report().messages, 94);
        assert!(m.report().depth <= 8);
    }

    #[test]
    fn csr_broadcast_matches_vec_charging() {
        // Random group shapes: the CSR path must charge the identical
        // energy, message count, and depth as the Vec-of-Vecs path.
        let shapes: Vec<Vec<(Slot, Vec<Slot>)>> = vec![
            vec![
                (0, vec![]),
                (1, vec![2]),
                (3, (4..20).collect()),
                (50, (51..128).collect()),
            ],
            (0..63).map(|i| (i, vec![i + 1])).collect(),
            vec![
                (5, (6..7).collect()),
                (10, vec![]),
                (20, (21..100).collect()),
            ],
            vec![],
        ];
        for groups in shapes {
            let m_vec = line(128);
            charge_broadcast_relays(&m_vec, &groups);

            let m_csr = line(128);
            let sources: Vec<Slot> = groups.iter().map(|(s, _)| *s).collect();
            let mut parts = Vec::new();
            let mut offsets = vec![0u32];
            for (_, ps) in &groups {
                parts.extend_from_slice(ps);
                offsets.push(parts.len() as u32);
            }
            let mut scratch = RelayScratch::new();
            charge_broadcast_relays_csr(&m_csr, &sources, &parts, &offsets, &mut scratch);

            assert_eq!(m_vec.report(), m_csr.report(), "groups {groups:?}");
        }
    }

    #[test]
    fn csr_reduce_matches_vec_charging() {
        let shapes: Vec<Vec<(Vec<Slot>, Slot)>> = vec![
            vec![
                (vec![], 0),
                (vec![2], 1),
                ((4..20).collect(), 3),
                ((51..128).collect(), 50),
            ],
            (0..63).map(|i| (vec![i + 1], i)).collect(),
            vec![((1..200).collect(), 0)],
            vec![((10..17).collect(), 2), ((30..31).collect(), 29)],
        ];
        for groups in shapes {
            let m_vec = line(256);
            let mut vec_groups = groups.clone();
            charge_reduce_relays(&m_vec, &mut vec_groups);

            let m_csr = line(256);
            let targets: Vec<Slot> = groups.iter().map(|(_, t)| *t).collect();
            let mut parts = Vec::new();
            let mut offsets = vec![0u32];
            for (ps, _) in &groups {
                parts.extend_from_slice(ps);
                offsets.push(parts.len() as u32);
            }
            let mut scratch = RelayScratch::with_capacity(parts.len(), targets.len());
            charge_reduce_relays_csr(&m_csr, &parts, &offsets, &targets, &mut scratch);

            assert_eq!(m_vec.report(), m_csr.report(), "groups {groups:?}");
        }
    }

    #[test]
    fn contiguous_participants_linear_energy() {
        // Contiguous participants on a curve: relay energy O(k) — the
        // Theorem 1 recursion at work.
        let machine = Machine::on_curve(CurveKind::Hilbert, 4096);
        let parts: Vec<Slot> = (1..4096).collect();
        charge_reduce_relay(&machine, &parts, 0);
        let per = machine.report().energy as f64 / 4096.0;
        assert!(per < 8.0, "relay energy per element {per} not O(1)");
    }
}
