//! Counting-allocator proof of the session layer's headline contract:
//! after one warm-up batch, a **1000-query mixed stream** (LCA +
//! subtree sums + Euler-tour ranks, across several `execute` calls)
//! performs **zero heap allocation** — every engine run, every answer
//! scatter, every report lands in retained buffers.
//!
//! Inserts are deliberately excluded from the gated stream: tree
//! mutations are the (amortized, documented) allocation path — they
//! rebuild the structure cache and machines. The steady state the
//! ROADMAP's serving story cares about is the query path.
//!
//! This binary holds exactly one live `#[test]` so no concurrent test
//! can pollute the count (the same harness as the layout/treefix/euler
//! `alloc_free` suites).

use rand::prelude::*;
use spatial_session::{QueryBatch, Request, Response, SpatialForest};
use spatial_tree::generators;
use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAllocator;

static GATE_OPEN: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    GATE_OPEN.store(true, Ordering::SeqCst);
    let result = f();
    GATE_OPEN.store(false, Ordering::SeqCst);
    (result, ALLOCATIONS.load(Ordering::SeqCst))
}

#[test]
fn thousand_query_mixed_stream_does_not_allocate() {
    let n = 2048u32;
    let tree = generators::uniform_random(n, &mut StdRng::seed_from_u64(42));
    let mut forest = SpatialForest::new(&tree);

    // Ten batches of 100 mixed queries each (40 LCA + 30 sums + 30
    // ranks), built up front so request construction stays outside the
    // gate too.
    let mut qrng = StdRng::seed_from_u64(7);
    let batches: Vec<QueryBatch> = (0..10)
        .map(|_| {
            let mut b = QueryBatch::with_capacity(100);
            for _ in 0..40 {
                b.lca(qrng.gen_range(0..n), qrng.gen_range(0..n));
            }
            for _ in 0..30 {
                b.subtree_sum(qrng.gen_range(0..n));
            }
            for _ in 0..30 {
                b.rank(qrng.gen_range(0..n));
            }
            b
        })
        .collect();
    assert_eq!(
        batches.iter().map(|b| b.len()).sum::<usize>(),
        1000,
        "the acceptance stream is 1000 queries"
    );

    // One warm-up batch: grows the lazily-built engines, the response
    // buffer, and every charging scratch to the workload size.
    let mut rng = StdRng::seed_from_u64(9);
    forest.execute(batches[0].requests(), &mut rng);

    let mut checksum = 0u64;
    let ((), allocs) = count_allocations(|| {
        for batch in &batches {
            let responses = forest.execute(batch.requests(), &mut rng);
            for r in responses {
                checksum ^= match *r {
                    Response::Lca(w) => w as u64,
                    Response::SubtreeSum(s) => s,
                    Response::Rank(r) => r,
                    Response::InsertedLeaf(v) => v as u64,
                };
            }
        }
    });
    assert!(checksum != 0, "responses were produced");
    assert!(forest.last_report().grid.energy > 0);
    assert_eq!(
        allocs, 0,
        "1000-query mixed stream allocated {allocs} times after warm-up"
    );

    // Cross-check a few answers against the request stream (the gate
    // proved the memory discipline; this proves it still answers).
    let responses = forest.execute(batches[0].requests(), &mut rng).to_vec();
    for (req, resp) in batches[0].requests().iter().zip(&responses) {
        match (req, resp) {
            (Request::Lca(..), Response::Lca(_)) => {}
            (Request::SubtreeSum(_), Response::SubtreeSum(s)) => assert!(*s >= 1),
            (Request::Rank(_), Response::Rank(r)) => assert!(*r < 2 * n as u64),
            other => panic!("mismatched response: {other:?}"),
        }
    }
}
