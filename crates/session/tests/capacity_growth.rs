//! Engine capacity growth: reuse one pooled engine at `n`, then
//! `2n + 3`, then `5` — results must be identical to fresh per-tree
//! builds, and `reserve` alone is the allocating step: after a single
//! `reserve` to the largest size, **every** bind + run cycle (first
//! run at a size included — no warm-up) is allocation-free
//! (counting-allocator gate, the same harness as the other
//! `alloc_free` suites).
//!
//! This binary holds exactly one live `#[test]` so no concurrent test
//! can pollute the count.

use rand::prelude::*;
use spatial_euler::ranking::{rank_sequential, RankingEngine};
use spatial_layout::Layout;
use spatial_model::{CurveKind, EngineLifecycle, Machine};
use spatial_tree::{generators, ChildrenCsr, Tree};
use spatial_treefix::contraction::ContractionEngine;
use spatial_treefix::{treefix_bottom_up_host, Add};
use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAllocator;

static GATE_OPEN: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    GATE_OPEN.store(true, Ordering::SeqCst);
    let result = f();
    GATE_OPEN.store(false, Ordering::SeqCst);
    (result, ALLOCATIONS.load(Ordering::SeqCst))
}

struct Workload {
    tree: Tree,
    layout: Layout,
    csr: ChildrenCsr,
    values: Vec<Add>,
    machine: Machine,
    expect: Vec<Add>,
    list: Vec<u32>,
    list_start: u32,
    list_machine: Machine,
    list_expect: Vec<u64>,
}

fn workload(n: u32, seed: u64) -> Workload {
    let tree = generators::uniform_random(n, &mut StdRng::seed_from_u64(seed));
    let layout = Layout::light_first(&tree, CurveKind::Hilbert);
    let sizes = tree.subtree_sizes();
    let csr = ChildrenCsr::by_size(&tree, &sizes);
    let values: Vec<Add> = (0..n as u64).map(|v| Add(v % 53 + 1)).collect();
    let machine = layout.machine();
    let expect = treefix_bottom_up_host(&tree, &values);

    let mut order: Vec<u32> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
    for i in (1..n as usize).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut list = vec![u32::MAX; n as usize];
    for w in order.windows(2) {
        list[w[0] as usize] = w[1];
    }
    let list_start = order[0];
    let list_machine = Machine::on_curve(CurveKind::Hilbert, n);
    let list_expect = rank_sequential(&list, list_start);
    Workload {
        tree,
        layout,
        csr,
        values,
        machine,
        expect,
        list,
        list_start,
        list_machine,
        list_expect,
    }
}

#[test]
fn growth_sequence_matches_fresh_builds_then_goes_alloc_free() {
    let n = 400u32;
    let small = workload(5, 3);
    let mid = workload(n, 1);
    let big = workload(2 * n + 3, 2);

    let mut treefix: ContractionEngine<Add> = ContractionEngine::with_capacity(n as usize);
    let mut ranking = RankingEngine::with_capacity(n as usize);

    // ---- Phase 1: n, then the growth to 2n+3, then 5 — every size ----
    // ---- must answer exactly like a fresh engine.                  ----
    for w in [&mid, &big, &small] {
        let wn = w.tree.n() as usize;
        treefix.reserve(wn);
        treefix.bind(&w.tree, &w.layout, &w.csr, &w.values, true);
        treefix.contract(&w.machine, &mut StdRng::seed_from_u64(11));
        assert_eq!(
            treefix.uncontract_bottom_up(&w.machine),
            &w.expect[..],
            "treefix at n={wn} diverged from the host oracle"
        );

        ranking.reserve(wn);
        ranking.bind(&w.list, w.list_start);
        ranking.rank(&w.list_machine, &mut StdRng::seed_from_u64(12));
        assert_eq!(
            ranking.ranks(),
            &w.list_expect[..],
            "ranking at n={wn} diverged from the sequential oracle"
        );
    }
    assert!(
        treefix.capacity() >= big.tree.n() as usize,
        "grew past 2n+3"
    );

    // ---- Phase 2: after the growth, the whole bind→run cycle at    ----
    // ---- every previously seen size is allocation-free.            ----
    let mut rng = StdRng::seed_from_u64(13);
    let ((), allocs) = count_allocations(|| {
        for w in [&small, &big, &mid, &big, &small] {
            treefix.bind(&w.tree, &w.layout, &w.csr, &w.values, true);
            treefix.contract(&w.machine, &mut rng);
            treefix.uncontract_bottom_up(&w.machine);

            ranking.bind(&w.list, w.list_start);
            ranking.rank(&w.list_machine, &mut rng);
        }
    });
    assert_eq!(treefix.output(), &small.expect[..]);
    assert_eq!(ranking.ranks(), &small.list_expect[..]);
    assert_eq!(
        allocs, 0,
        "post-growth bind/run cycles allocated {allocs} times"
    );

    // ---- Phase 3 (strict): brand-new engines, one `reserve`, no    ----
    // ---- warm-up runs — the FIRST charged run at every size must   ----
    // ---- already be clean, proving `reserve` grows everything      ----
    // ---- (relay + local-charge scratch included).                  ----
    let mut cold_treefix: ContractionEngine<Add> = ContractionEngine::with_capacity(8);
    let mut cold_ranking = RankingEngine::with_capacity(8);
    cold_treefix.reserve(big.tree.n() as usize);
    cold_ranking.reserve(big.tree.n() as usize);
    let ((), allocs) = count_allocations(|| {
        for w in [&big, &small, &mid] {
            cold_treefix.bind(&w.tree, &w.layout, &w.csr, &w.values, true);
            cold_treefix.contract(&w.machine, &mut rng);
            cold_treefix.uncontract_bottom_up(&w.machine);

            cold_ranking.bind(&w.list, w.list_start);
            cold_ranking.rank(&w.list_machine, &mut rng);
        }
    });
    assert_eq!(cold_treefix.output(), &mid.expect[..]);
    assert_eq!(cold_ranking.ranks(), &mid.list_expect[..]);
    assert_eq!(
        allocs, 0,
        "reserve-only engines allocated {allocs} times on their first runs"
    );
}
