//! Counting-allocator proof of the restart story: a recovered forest
//! that has been [`SpatialForest::warmstart`]ed serves its **first**
//! post-restart mixed query session with **zero heap allocation** —
//! the engine pool and every batch scratch are pre-sized from the
//! snapshot header's reserved capacity, so the restart does not pay a
//! warm-up session the way a cold forest does.
//!
//! This binary holds exactly one live `#[test]` so no concurrent test
//! can pollute the count (the same harness as `alloc_free.rs`).

use rand::prelude::*;
use spatial_session::{ForestBacking, ForestOptions, QueryBatch, Response, SpatialForest};
use spatial_tree::generators;
use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAllocator;

static GATE_OPEN: AtomicBool = AtomicBool::new(false);
static TRAP: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            if TRAP.load(Ordering::Relaxed) {
                GATE_OPEN.store(false, Ordering::SeqCst);
                panic!("gated alloc of {} bytes", layout.size());
            }
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        if GATE_OPEN.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            if TRAP.load(Ordering::Relaxed) {
                GATE_OPEN.store(false, Ordering::SeqCst);
                panic!("gated realloc {} -> {} bytes", layout.size(), new_size);
            }
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    GATE_OPEN.store(true, Ordering::SeqCst);
    let result = f();
    GATE_OPEN.store(false, Ordering::SeqCst);
    (result, ALLOCATIONS.load(Ordering::SeqCst))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spatial-warmstart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn warmstarted_recovery_serves_first_session_without_allocating() {
    let n = 1024u32;
    let dir = temp_dir("first-session");
    let snap_path = dir.join("forest.snapshot");

    // A forest with history: inserts (so reserved > n in the header)
    // and one query batch to settle the layout light-first.
    let tree = generators::uniform_random(n, &mut StdRng::seed_from_u64(42));
    let mut forest = SpatialForest::new(&tree);
    let mut rng = StdRng::seed_from_u64(9);
    let mut grow = QueryBatch::new();
    for v in 0..64u32 {
        grow.insert_leaf_weighted(v % n, v as u64 + 1);
    }
    forest.execute(grow.requests(), &mut rng);
    let mut settle = QueryBatch::new();
    settle.lca(1, 2).subtree_sum(0).rank(3);
    forest.execute(settle.requests(), &mut rng);
    forest.snapshot_to(&snap_path, 1).expect("snapshot");

    // The first post-restart session's stream, built before the gate.
    let total = forest.n();
    let mut qrng = StdRng::seed_from_u64(7);
    let mut batch = QueryBatch::with_capacity(100);
    for _ in 0..40 {
        batch.lca(qrng.gen_range(0..total), qrng.gen_range(0..total));
    }
    for _ in 0..30 {
        batch.subtree_sum(qrng.gen_range(0..total));
    }
    for _ in 0..30 {
        batch.rank(qrng.gen_range(0..total));
    }

    // Restart: recover and warmstart — no warm-up execute.
    let mut restarted = SpatialForest::recover_with(
        &snap_path,
        dir.join("forest.journal"),
        ForestOptions::default(),
        ForestBacking::Owned,
    )
    .expect("recover");
    assert_eq!(restarted.replayed_records(), 0, "no journal to replay");
    restarted.warmstart(batch.len());

    TRAP.store(
        std::env::var_os("WARMSTART_TRAP").is_some(),
        Ordering::SeqCst,
    );
    let mut session_rng = StdRng::seed_from_u64(77);
    let mut checksum = 0u64;
    let ((), allocs) = count_allocations(|| {
        let responses = restarted.execute(batch.requests(), &mut session_rng);
        for r in responses {
            checksum ^= match *r {
                Response::Lca(w) => w as u64,
                Response::SubtreeSum(s) => s,
                Response::Rank(r) => r,
                Response::InsertedLeaf(v) => v as u64,
            };
        }
    });
    assert!(checksum != 0, "responses were produced");
    assert_eq!(
        allocs, 0,
        "first post-restart session allocated {allocs} times despite warmstart"
    );

    // The warmstart must be charge- and answer-neutral: a twin that
    // recovers without warmstarting gives bit-identical results.
    let mut twin = SpatialForest::recover_with(
        &snap_path,
        dir.join("forest.journal"),
        ForestOptions::default(),
        ForestBacking::Owned,
    )
    .expect("recover twin");
    let mut twin_rng = StdRng::seed_from_u64(77);
    let mut twin_checksum = 0u64;
    for r in twin.execute(batch.requests(), &mut twin_rng) {
        twin_checksum ^= match *r {
            Response::Lca(w) => w as u64,
            Response::SubtreeSum(s) => s,
            Response::Rank(r) => r,
            Response::InsertedLeaf(v) => v as u64,
        };
    }
    assert_eq!(checksum, twin_checksum, "warmstart changed answers");
    assert_eq!(
        twin.last_report(),
        restarted.last_report(),
        "warmstart changed charges"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
