//! The engine pool: lazily-built, epoch-tagged, capacity-growable
//! engines behind the forest.
//!
//! Engines are built on first use (a forest that only ever answers
//! subtree sums never pays for a subtree cover), invalidated by the
//! forest's mutation epoch, and **rebound** — not rebuilt — where the
//! engine supports it: rebinding reuses every retained flat buffer and
//! only allocates when the tree outgrew the capacity
//! ([`spatial_model::EngineLifecycle::reserve`], amortized doubling).

use rand::rngs::StdRng;
use rand::SeedableRng;
use spatial_euler::ranking::RankingEngine;
use spatial_layout::{Layout, LayoutEngine};
use spatial_lca::LcaEngine;
use spatial_model::{CurveKind, EngineLifecycle};
use spatial_pram::{PramEngine, PramTreefix};
use spatial_tree::Tree;
use spatial_treefix::contraction::ContractionEngine;
use spatial_treefix::Add;

/// Build/rebind counters of the pool (observability + test hooks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Fresh engine constructions (first use after a kind's cold start).
    pub builds: u32,
    /// Structure rebinds into retained buffers (epoch misses).
    pub rebinds: u32,
    /// Capacity growths across all engines.
    pub grows: u32,
}

/// The forest's engine pool. Every engine is optional until first use;
/// `u64::MAX` marks "never bound".
pub struct EnginePool {
    curve: CurveKind,
    /// Base seed for the PRAM shadow engine's hashed cell placement
    /// (deterministic per epoch so fresh and reused forests charge
    /// identically).
    pram_seed: u64,
    stats: PoolStats,

    /// §VI-C batched LCA.
    lca: Option<LcaEngine>,
    lca_epoch: u64,
    /// §V treefix contraction (subtree sums), rebound every session
    /// via `bind_parts` — epoch-free because binding is part of each
    /// run.
    pub(crate) treefix: ContractionEngine<Add>,
    /// Theorem 5 list ranking over the light-first Euler tour darts.
    ranking: Option<RankingEngine>,
    ranking_epoch: u64,
    /// §IV on-machine layout construction (charged build reports).
    layout_engine: Option<LayoutEngine>,
    layout_epoch: u64,
    /// PRAM shadow (crossover mode): the same subtree sums priced on
    /// the §I-C simulation.
    pram: Option<(PramEngine, PramTreefix)>,
    pram_epoch: u64,
}

impl EnginePool {
    /// An empty pool whose treefix engine is pre-sized for `cap`
    /// vertices.
    pub(crate) fn new(curve: CurveKind, cap: usize, pram_seed: u64) -> Self {
        EnginePool {
            curve,
            pram_seed,
            stats: PoolStats::default(),
            lca: None,
            lca_epoch: u64::MAX,
            treefix: ContractionEngine::with_capacity(cap),
            ranking: None,
            ranking_epoch: u64::MAX,
            layout_engine: None,
            layout_epoch: u64::MAX,
            pram: None,
            pram_epoch: u64::MAX,
        }
    }

    /// Build/rebind counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Whether the batched-LCA engine has been built.
    pub fn has_lca(&self) -> bool {
        self.lca.is_some()
    }

    /// Whether the ranking engine has been built.
    pub fn has_ranking(&self) -> bool {
        self.ranking.is_some()
    }

    /// Whether the layout engine has been built.
    pub fn has_layout_engine(&self) -> bool {
        self.layout_engine.is_some()
    }

    /// The treefix engine's current capacity (vertices).
    pub fn treefix_capacity(&self) -> usize {
        self.treefix.capacity()
    }

    /// Grows the treefix engine for a tree of `n` vertices, counting
    /// the growth. (The other engines grow inside their rebinds.)
    pub(crate) fn reserve_treefix(&mut self, n: usize) {
        if n > self.treefix.capacity() {
            self.treefix.reserve(n.next_power_of_two());
            self.stats.grows += 1;
        }
    }

    /// The LCA engine, built or rebound for `epoch`.
    pub(crate) fn lca_for(&mut self, epoch: u64, layout: &Layout, tree: &Tree) -> &mut LcaEngine {
        match &mut self.lca {
            None => {
                self.lca = Some(LcaEngine::new(layout, tree));
                self.stats.builds += 1;
            }
            Some(engine) if self.lca_epoch != epoch => {
                if (tree.n() as usize) > engine.capacity() {
                    self.stats.grows += 1;
                }
                engine.bind(layout, tree);
                self.stats.rebinds += 1;
            }
            Some(_) => {}
        }
        self.lca_epoch = epoch;
        self.lca.as_mut().expect("just built")
    }

    /// The ranking engine, built or rebound for `epoch` over the tour
    /// successor darts.
    pub(crate) fn ranking_for(
        &mut self,
        epoch: u64,
        tour_next: &[u32],
        tour_start: u32,
    ) -> &mut RankingEngine {
        match &mut self.ranking {
            None => {
                self.ranking = Some(RankingEngine::new(tour_next, tour_start));
                self.stats.builds += 1;
            }
            Some(engine) if self.ranking_epoch != epoch => {
                if tour_next.len() > engine.capacity() {
                    engine.reserve(tour_next.len().next_power_of_two());
                    self.stats.grows += 1;
                }
                engine.bind(tour_next, tour_start);
                self.stats.rebinds += 1;
            }
            Some(_) => {}
        }
        self.ranking_epoch = epoch;
        self.ranking.as_mut().expect("just built")
    }

    /// The §IV layout engine for `epoch` (structure is per-tree, so an
    /// epoch miss reconstructs it — see
    /// [`spatial_layout::LayoutEngine`]'s lifecycle notes).
    pub(crate) fn layout_engine_for(&mut self, epoch: u64, tree: &Tree) -> &mut LayoutEngine {
        if self.layout_engine.is_none() || self.layout_epoch != epoch {
            if self.layout_engine.is_none() {
                self.stats.builds += 1;
            } else {
                self.stats.rebinds += 1;
            }
            self.layout_engine = Some(LayoutEngine::new(tree, self.curve));
            self.layout_epoch = epoch;
        }
        self.layout_engine.as_mut().expect("just built")
    }

    /// The PRAM shadow pair for `epoch` (crossover mode). The engine's
    /// hashed cell placement is derived from `pram_seed ^ epoch`, so a
    /// replayed stream prices identically.
    pub(crate) fn pram_for(&mut self, epoch: u64, tree: &Tree) -> &mut (PramEngine, PramTreefix) {
        if self.pram.is_none() || self.pram_epoch != epoch {
            if self.pram.is_none() {
                self.stats.builds += 1;
            } else {
                self.stats.rebinds += 1;
            }
            let n = tree.n();
            let mut rng = StdRng::seed_from_u64(self.pram_seed ^ epoch);
            // ≥ 2n cells: the treefix scatters one value per tour dart.
            self.pram = Some((
                PramEngine::with_curve(self.curve, n, 2 * n.max(1), &mut rng),
                PramTreefix::new(tree),
            ));
            self.pram_epoch = epoch;
        }
        self.pram.as_mut().expect("just built")
    }
}
