//! [`SpatialForest`]: one tree + layout, pooled engines, mixed query
//! batches in charge-batched sessions.

use crate::batch::{Request, Response, SessionReport};
use crate::pool::EnginePool;
use rand::Rng;
use spatial_euler::ranking::{END, UNRANKED};
use spatial_euler::tour::{down, EulerTour};
use spatial_layout::{DynamicLayout, DynamicStats, Layout, SpatialBuildReport};
use spatial_model::{CurveKind, Machine, Slot};
use spatial_store::{ForestSnapshot, JournalWriter, Record, StoreError};
use spatial_tree::{ChildrenCsr, NodeId, Tree};
use spatial_treefix::Add;
use std::path::Path;

/// Construction options for [`SpatialForest`].
#[derive(Debug, Clone, Copy)]
pub struct ForestOptions {
    /// Space-filling curve family of the layout and machine.
    pub curve: CurveKind,
    /// Kernel-energy degradation factor before the dynamic layout
    /// rebuilds itself (see [`DynamicLayout`]).
    pub rebuild_factor: f64,
    /// Crossover mode: shadow-price every subtree-sum session on the
    /// §I-C PRAM simulation and report both ([`SessionReport::pram`]).
    pub crossover: bool,
    /// Base seed of the PRAM shadow engine's hashed cell placement.
    pub pram_seed: u64,
}

impl Default for ForestOptions {
    fn default() -> Self {
        ForestOptions {
            curve: CurveKind::Hilbert,
            rebuild_factor: 2.0,
            crossover: false,
            pram_seed: 0x5eed_0f0e,
        }
    }
}

/// A tree held in a light-first layout with a pool of retained engines,
/// serving mixed query batches. See the crate docs for the model and
/// `DESIGN.md` for the lifecycle details.
pub struct SpatialForest {
    opts: ForestOptions,
    /// The tree + its incrementally maintained layout (owns both).
    dynamic: DynamicLayout,
    /// Mutation epoch: bumped by every insert and forced relayout;
    /// engines bound at an older epoch rebind before running.
    epoch: u64,
    /// Whether tail appends have left the layout non-light-first (the
    /// batched LCA engine requires light-first; other engines only
    /// charge more on a degraded layout).
    layout_dirty: bool,
    /// Whether an execute is in flight (report-folding guard).
    in_execute: bool,

    // ---- Materialized structure cache (refreshed per epoch). ----
    structure_epoch: u64,
    tree: Tree,
    parents: Vec<NodeId>,
    slots: Vec<Slot>,
    csr_sizes: Vec<u32>,
    csr: ChildrenCsr,
    tour_next: Vec<u32>,
    tour_start: u32,
    /// Grid machine over the layout's true curve geometry.
    machine: Machine,
    /// 2-slots-per-vertex machine for the Euler-tour ranking sessions.
    dart_machine: Machine,

    // ---- Per-vertex query values. ----
    weights: Vec<u64>,
    weights_add: Vec<Add>,

    /// When attached, every durable mutation (insert, weight change,
    /// query-triggered rebuild) is appended here **before** it is
    /// applied in memory, so the journaled history is never behind the
    /// live state. Journal IO failure is fail-stop (panic): continuing
    /// would silently diverge the durable history from the forest.
    journal: Option<JournalWriter>,

    pool: EnginePool,

    // ---- Retained batch scratch (zero steady-state allocation). ----
    responses: Vec<Response>,
    lca_q: Vec<(NodeId, NodeId)>,
    lca_idx: Vec<u32>,
    lca_answers: Vec<NodeId>,
    sum_v: Vec<NodeId>,
    sum_idx: Vec<u32>,
    rank_v: Vec<NodeId>,
    rank_idx: Vec<u32>,

    session: SessionReport,
}

impl SpatialForest {
    /// A forest over `tree` with unit weights and default options
    /// (Hilbert curve, rebuild factor 2, no crossover shadow).
    pub fn new(tree: &Tree) -> Self {
        Self::with_options(tree, ForestOptions::default())
    }

    /// [`SpatialForest::new`] on an explicit curve family.
    pub fn with_curve(tree: &Tree, curve: CurveKind) -> Self {
        Self::with_options(
            tree,
            ForestOptions {
                curve,
                ..ForestOptions::default()
            },
        )
    }

    /// A forest with explicit options; weights start at 1 per vertex
    /// (adjust with [`SpatialForest::set_weight`]).
    pub fn with_options(tree: &Tree, opts: ForestOptions) -> Self {
        let n = tree.n() as usize;
        let dynamic = DynamicLayout::new(tree, opts.curve, opts.rebuild_factor);
        Self::from_dynamic(dynamic, vec![1; n], false, opts)
    }

    /// The shared constructor: wraps an already-built dynamic layout
    /// (fresh from [`DynamicLayout::new`] or restored from a snapshot)
    /// with the forest's caches, machines, and engine pool.
    fn from_dynamic(
        dynamic: DynamicLayout,
        weights: Vec<u64>,
        layout_dirty: bool,
        opts: ForestOptions,
    ) -> Self {
        let n = dynamic.n() as usize;
        assert_eq!(weights.len(), n, "one weight per vertex");
        let tree = dynamic.tree();
        let mut forest = SpatialForest {
            opts,
            dynamic,
            epoch: 0,
            layout_dirty,
            in_execute: false,
            structure_epoch: u64::MAX,
            tree: Tree::from_parents(0, vec![spatial_tree::NIL]),
            parents: Vec::with_capacity(n),
            slots: Vec::with_capacity(n),
            csr_sizes: Vec::with_capacity(n),
            csr: ChildrenCsr::by_size(&tree, &tree.subtree_sizes()),
            tour_next: Vec::with_capacity(2 * n),
            tour_start: END,
            machine: Machine::on_curve(opts.curve, 1),
            dart_machine: Machine::on_curve(opts.curve, 1),
            weights_add: weights.iter().map(|&w| Add(w)).collect(),
            weights,
            journal: None,
            pool: EnginePool::new(opts.curve, n, opts.pram_seed),
            responses: Vec::new(),
            lca_q: Vec::new(),
            lca_idx: Vec::new(),
            lca_answers: Vec::new(),
            sum_v: Vec::new(),
            sum_idx: Vec::new(),
            rank_v: Vec::new(),
            rank_idx: Vec::new(),
            session: SessionReport::default(),
        };
        forest.refresh_structure();
        forest
    }

    /// Current number of vertices.
    pub fn n(&self) -> u32 {
        self.dynamic.n()
    }

    /// The current tree (materialized; refreshes the structure cache
    /// if the last batch mutated the tree).
    pub fn tree(&mut self) -> &Tree {
        self.ensure_structure();
        &self.tree
    }

    /// The current layout (valid until the next mutating batch).
    pub fn layout(&self) -> &Layout {
        self.dynamic.layout()
    }

    /// The dynamic layout's lifetime statistics (inserts, rebuilds,
    /// capacity growths).
    pub fn dynamic_stats(&self) -> DynamicStats {
        self.dynamic.stats()
    }

    /// The engine pool (build/rebind observability).
    pub fn pool(&self) -> &EnginePool {
        &self.pool
    }

    /// Charges of the most recent [`SpatialForest::execute`].
    pub fn last_report(&self) -> SessionReport {
        self.session
    }

    /// The subtree-sum weight of a vertex.
    pub fn weight(&self, v: NodeId) -> u64 {
        self.weights[v as usize]
    }

    /// Sets the subtree-sum weight of a vertex (no relayout — weights
    /// are per-session treefix inputs, not structure).
    pub fn set_weight(&mut self, v: NodeId, weight: u64) {
        if let Some(journal) = self.journal.as_mut() {
            journal
                .append(Record::SetWeight { vertex: v, weight })
                .expect("journal append failed (fail-stop)");
        }
        self.weights[v as usize] = weight;
        self.weights_add[v as usize] = Add(weight);
    }

    // ---- Durability: snapshot + journal + recovery. ----

    /// Captures the forest's durable state (tree structure, layout
    /// order and reserve, weights, rebuild-threshold anchor) as a
    /// [`ForestSnapshot`]. `tag` is stored verbatim for the caller —
    /// the serve layer keeps its journal generation there.
    ///
    /// Restoring the snapshot ([`SpatialForest::from_snapshot`]) and
    /// replaying any later journal ([`SpatialForest::apply_journal`])
    /// yields a forest that is *bit-identical going forward*: the same
    /// answers **and** the same [`SessionReport`] charges for every
    /// future batch, including the same rebuild/growth schedule.
    pub fn snapshot(&self, tag: u64) -> ForestSnapshot {
        let stats = self.dynamic.stats();
        let curve = CurveKind::ALL
            .iter()
            .position(|&c| c == self.opts.curve)
            .expect("every curve kind is in CurveKind::ALL") as u32;
        ForestSnapshot {
            curve,
            root: self.dynamic.root(),
            layout_dirty: self.layout_dirty,
            rebuilds: stats.rebuilds,
            grows: stats.grows,
            reserved: self.dynamic.reserved(),
            baseline_energy: stats.baseline_energy,
            insertions: stats.insertions,
            tag,
            parents: self.dynamic.parents().to_vec(),
            order: self.dynamic.layout().order().to_vec(),
            weights: self.weights.clone(),
        }
    }

    /// [`SpatialForest::snapshot`] written to `path` via temp-file +
    /// atomic rename (readers never observe a partial snapshot).
    pub fn snapshot_to(&self, path: impl AsRef<Path>, tag: u64) -> std::io::Result<()> {
        self.snapshot(tag).write_to(path)
    }

    /// Restores a forest from a snapshot. The curve family comes from
    /// the snapshot (overriding `opts.curve`); `rebuild_factor`,
    /// `crossover`, and `pram_seed` are not persisted and must be
    /// passed unchanged for charge-identical recovery.
    pub fn from_snapshot(snap: &ForestSnapshot, opts: ForestOptions) -> Self {
        let curve = *CurveKind::ALL
            .get(snap.curve as usize)
            .expect("snapshot curve index out of range");
        let opts = ForestOptions { curve, ..opts };
        let dynamic = DynamicLayout::restore(
            snap.root,
            snap.parents.clone(),
            curve,
            snap.order.clone(),
            snap.reserved,
            opts.rebuild_factor,
            DynamicStats {
                insertions: snap.insertions,
                rebuilds: snap.rebuilds,
                grows: snap.grows,
                baseline_energy: snap.baseline_energy,
            },
        );
        Self::from_dynamic(dynamic, snap.weights.clone(), snap.layout_dirty, opts)
    }

    /// Full crash recovery: load the snapshot at `snapshot_path`, then
    /// replay every intact record of the journal at `journal_path` (a
    /// missing journal file is an empty history). The journal's torn
    /// tail, if any, is silently dropped — see `spatial_store`.
    pub fn recover_from(
        snapshot_path: impl AsRef<Path>,
        journal_path: impl AsRef<Path>,
        opts: ForestOptions,
    ) -> Result<Self, StoreError> {
        let snap = ForestSnapshot::read_from(snapshot_path)?;
        let mut forest = Self::from_snapshot(&snap, opts);
        let records = spatial_store::read_journal(journal_path)?;
        forest.apply_journal(&records);
        Ok(forest)
    }

    /// Replays journal records against the restored forest, in order.
    /// [`Record::RngState`] markers are skipped — session RNG recovery
    /// belongs to the serve layer, which owns the RNG.
    pub fn apply_journal(&mut self, records: &[Record]) {
        for rec in records {
            match *rec {
                Record::InsertLeaf { parent, weight } => {
                    self.insert_leaf_inner(parent, weight);
                }
                Record::SetWeight { vertex, weight } => {
                    self.weights[vertex as usize] = weight;
                    self.weights_add[vertex as usize] = Add(weight);
                }
                Record::Rebuild => {
                    self.dynamic.rebuild();
                    self.layout_dirty = false;
                    self.epoch += 1;
                }
                Record::RngState(_) => {}
            }
        }
    }

    /// Starts journaling: every subsequent durable mutation is appended
    /// to `writer` before being applied (write-ahead).
    pub fn attach_journal(&mut self, writer: JournalWriter) {
        self.journal = Some(writer);
    }

    /// Stops journaling and hands the writer back (the checkpoint path:
    /// snapshot, then switch to a fresh journal generation).
    pub fn detach_journal(&mut self) -> Option<JournalWriter> {
        self.journal.take()
    }

    /// The attached journal, if any — the serve layer appends its
    /// [`Record::RngState`] session commit markers through this.
    pub fn journal_mut(&mut self) -> Option<&mut JournalWriter> {
        self.journal.as_mut()
    }

    /// The insert-leaf mutation shared by the execute path and journal
    /// replay: extends the dynamic layout and the weight arrays, and
    /// tracks whether the append left the layout non-light-first.
    fn insert_leaf_inner(&mut self, parent: NodeId, weight: u64) -> NodeId {
        let rebuilds_before = self.dynamic.stats().rebuilds;
        let v = self.dynamic.insert_leaf(parent);
        // An insert dirties the light-first order unless the dynamic
        // layout's quality threshold rebuilt it on the spot (the
        // rebuild runs after the append).
        self.layout_dirty = self.dynamic.stats().rebuilds == rebuilds_before;
        self.weights.push(weight);
        self.weights_add.push(Add(weight));
        self.epoch += 1;
        v
    }

    /// Runs the §IV on-machine layout construction for the current
    /// tree through the pooled [`spatial_layout::LayoutEngine`],
    /// returning its per-phase charge report. (The forest's live
    /// layout is host-maintained; this prices what building it on the
    /// machine would cost — the E5 experiment as a service call.)
    pub fn charged_layout_build<R: Rng>(&mut self, rng: &mut R) -> SpatialBuildReport {
        self.ensure_structure();
        let engine = self.pool.layout_engine_for(self.epoch, &self.tree);
        engine.build_into(rng)
    }

    /// Executes a mixed request stream. Consecutive queries between
    /// mutations form one *charge-batched session*: each query kind in
    /// a session pays for a single engine run, however many queries
    /// share it. Responses align with `requests` by index; machine
    /// charges land in [`SpatialForest::last_report`].
    pub fn execute<R: Rng>(&mut self, requests: &[Request], rng: &mut R) -> &[Response] {
        self.machine.reset();
        self.dart_machine.reset();
        self.session = SessionReport::default();
        self.in_execute = true;
        self.responses.clear();
        // Drop any queries a previous execute left behind (it can only
        // happen if a caller caught a panic mid-flush and reused the
        // forest — stale indices must not corrupt this batch).
        self.lca_q.clear();
        self.lca_idx.clear();
        self.sum_v.clear();
        self.sum_idx.clear();
        self.rank_v.clear();
        self.rank_idx.clear();

        for (i, &req) in requests.iter().enumerate() {
            match req {
                Request::Lca(a, b) => {
                    self.lca_q.push((a, b));
                    self.lca_idx.push(i as u32);
                    self.responses.push(Response::Lca(spatial_tree::NIL));
                }
                Request::SubtreeSum(v) => {
                    self.sum_v.push(v);
                    self.sum_idx.push(i as u32);
                    self.responses.push(Response::SubtreeSum(0));
                }
                Request::Rank(v) => {
                    self.rank_v.push(v);
                    self.rank_idx.push(i as u32);
                    self.responses.push(Response::Rank(0));
                }
                Request::InsertLeaf { parent, weight } => {
                    self.flush_session(rng);
                    if let Some(journal) = self.journal.as_mut() {
                        journal
                            .append(Record::InsertLeaf { parent, weight })
                            .expect("journal append failed (fail-stop)");
                    }
                    let v = self.insert_leaf_inner(parent, weight);
                    self.session.inserts += 1;
                    self.responses.push(Response::InsertedLeaf(v));
                }
            }
        }
        self.flush_session(rng);

        self.in_execute = false;
        self.session.grid = self.session.grid + self.machine.report();
        self.session.ranking = self.session.ranking + self.dart_machine.report();
        &self.responses
    }

    /// Restores the light-first order after tail appends (the batched
    /// LCA engine's correctness precondition) and bumps the epoch so
    /// slot-dependent engine bindings refresh.
    fn ensure_light_first(&mut self) {
        if self.layout_dirty {
            // Query-triggered rebuilds depend on which queries arrived,
            // not just the insert stream — they must be journaled or
            // replay would diverge. (Threshold rebuilds inside an
            // insert are deterministic and are not.)
            if let Some(journal) = self.journal.as_mut() {
                journal
                    .append(Record::Rebuild)
                    .expect("journal append failed (fail-stop)");
            }
            self.dynamic.rebuild();
            self.layout_dirty = false;
            self.epoch += 1;
        }
    }

    fn ensure_structure(&mut self) {
        if self.structure_epoch != self.epoch {
            self.refresh_structure();
        }
    }

    /// Rebuilds the materialized structure cache and both machines
    /// from the dynamic layout (the mutation path — allocation is
    /// allowed and amortized here, never on the query path).
    fn refresh_structure(&mut self) {
        // Fold the outgoing machines' charges into the in-flight
        // report before replacing them mid-execute.
        if self.in_execute {
            self.session.grid = self.session.grid + self.machine.report();
            self.session.ranking = self.session.ranking + self.dart_machine.report();
        }
        self.tree = self.dynamic.tree();
        let n = self.tree.n();
        self.parents.clear();
        self.parents.extend_from_slice(self.tree.parents());
        let layout = self.dynamic.layout();
        self.slots.clear();
        self.slots.extend((0..n).map(|v| layout.slot(v)));
        self.csr_sizes.clear();
        self.csr_sizes.extend_from_slice(&self.tree.subtree_sizes());
        self.csr = ChildrenCsr::by_size(&self.tree, &self.csr_sizes);
        if n == 1 {
            self.tour_next.clear();
            self.tour_next.extend_from_slice(&[END, END]);
            self.tour_start = END;
        } else {
            let tour = EulerTour::light_first_from_csr(&self.tree, &self.csr);
            self.tour_next.clear();
            self.tour_next.extend_from_slice(tour.next_darts());
            self.tour_start = tour.start();
        }
        // The grid machine mirrors the layout's actual curve cells
        // (`Layout::machine` prices capacity-reserved tails correctly).
        self.machine = layout.machine();
        self.dart_machine = Machine::on_curve(self.opts.curve, 2 * n);
        self.structure_epoch = self.epoch;
    }

    /// Flushes the buffered query session: one charged engine run per
    /// kind present, in the fixed order LCA → subtree sums → ranks.
    fn flush_session<R: Rng>(&mut self, rng: &mut R) {
        if self.lca_q.is_empty() && self.sum_v.is_empty() && self.rank_v.is_empty() {
            return;
        }
        if !self.lca_q.is_empty() {
            self.ensure_light_first();
        }
        self.ensure_structure();
        self.session.sessions += 1;

        if !self.lca_q.is_empty() {
            let engine = self
                .pool
                .lca_for(self.epoch, self.dynamic.layout(), &self.tree);
            engine.run_into(&self.machine, &self.lca_q, &mut self.lca_answers, rng);
            for (&idx, &w) in self.lca_idx.iter().zip(self.lca_answers.iter()) {
                self.responses[idx as usize] = Response::Lca(w);
            }
            self.session.lca_queries += self.lca_q.len() as u32;
            self.lca_q.clear();
            self.lca_idx.clear();
        }

        if !self.sum_v.is_empty() {
            self.pool.reserve_treefix(self.tree.n() as usize);
            self.pool.treefix.bind_parts(
                &self.parents,
                &self.slots,
                &self.csr,
                &self.weights_add,
                true,
            );
            self.pool.treefix.contract(&self.machine, rng);
            let sums = self.pool.treefix.uncontract_bottom_up(&self.machine);
            for (&idx, &v) in self.sum_idx.iter().zip(self.sum_v.iter()) {
                self.responses[idx as usize] = Response::SubtreeSum(sums[v as usize].0);
            }
            self.session.sum_queries += self.sum_v.len() as u32;

            if self.opts.crossover {
                let (pram, treefix) = self.pool.pram_for(self.epoch, &self.tree);
                pram.reset();
                treefix.subtree_sums(pram, &self.weights, rng);
                let shadow = pram.report();
                self.session.pram = Some(self.session.pram.unwrap_or_default() + shadow);
            }
            self.sum_v.clear();
            self.sum_idx.clear();
        }

        if !self.rank_v.is_empty() {
            let engine = self
                .pool
                .ranking_for(self.epoch, &self.tour_next, self.tour_start);
            engine.rank(&self.dart_machine, rng);
            let root = self.tree.root();
            for (&idx, &v) in self.rank_idx.iter().zip(self.rank_v.iter()) {
                assert!(v < self.tree.n(), "rank query {v} out of range");
                let rank = if v == root {
                    0
                } else {
                    let r = engine.ranks()[down(v) as usize];
                    debug_assert_ne!(r, UNRANKED, "non-root vertex off the tour");
                    r + 1
                };
                self.responses[idx as usize] = Response::Rank(rank);
            }
            self.session.rank_queries += self.rank_v.len() as u32;
            self.rank_v.clear();
            self.rank_idx.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_euler::ranking::rank_sequential;
    use spatial_tree::generators;

    fn naive_lca(tree: &Tree, mut a: NodeId, mut b: NodeId) -> NodeId {
        let depth = |mut v: NodeId| {
            let mut d = 0u32;
            while let Some(p) = tree.parent(v) {
                v = p;
                d += 1;
            }
            d
        };
        let (mut da, mut db) = (depth(a), depth(b));
        while da > db {
            a = tree.parent(a).unwrap();
            da -= 1;
        }
        while db > da {
            b = tree.parent(b).unwrap();
            db -= 1;
        }
        while a != b {
            a = tree.parent(a).unwrap();
            b = tree.parent(b).unwrap();
        }
        a
    }

    fn naive_subtree_sum(tree: &Tree, weights: &[u64], v: NodeId) -> u64 {
        let mut sum = weights[v as usize];
        for c in tree.children(v) {
            sum += naive_subtree_sum(tree, weights, *c);
        }
        sum
    }

    fn naive_rank(tree: &Tree, v: NodeId) -> u64 {
        if v == tree.root() {
            return 0;
        }
        let sizes = tree.subtree_sizes();
        let csr = ChildrenCsr::by_size(tree, &sizes);
        let tour = EulerTour::light_first_from_csr(tree, &csr);
        rank_sequential(tour.next_darts(), tour.start())[down(v) as usize] + 1
    }

    #[test]
    fn mixed_batch_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        let tree = generators::uniform_random(200, &mut rng);
        let mut forest = SpatialForest::new(&tree);
        let mut batch = crate::QueryBatch::new();
        for i in 0..40u32 {
            batch.lca(i * 3 % 200, i * 7 % 200);
            batch.subtree_sum(i * 5 % 200);
            batch.rank(i * 11 % 200);
        }
        let responses = forest.execute(batch.requests(), &mut rng).to_vec();
        let weights = vec![1u64; 200];
        for (req, resp) in batch.requests().iter().zip(&responses) {
            match (*req, *resp) {
                (Request::Lca(a, b), Response::Lca(w)) => {
                    assert_eq!(w, naive_lca(&tree, a, b), "lca({a},{b})")
                }
                (Request::SubtreeSum(v), Response::SubtreeSum(s)) => {
                    assert_eq!(s, naive_subtree_sum(&tree, &weights, v), "sum({v})")
                }
                (Request::Rank(v), Response::Rank(r)) => {
                    assert_eq!(r, naive_rank(&tree, v), "rank({v})")
                }
                other => panic!("mismatched response kind: {other:?}"),
            }
        }
        let report = forest.last_report();
        assert_eq!(report.sessions, 1, "one mutation-free session");
        assert_eq!(report.lca_queries, 40);
        assert!(report.grid.energy > 0);
        assert!(report.ranking.energy > 0);
        assert!(report.pram.is_none());
    }

    #[test]
    fn inserts_split_sessions_and_are_visible() {
        let mut rng = StdRng::seed_from_u64(2);
        let tree = generators::random_binary(60, &mut rng);
        let mut forest = SpatialForest::new(&tree);
        let mut batch = crate::QueryBatch::new();
        batch
            .subtree_sum(tree.root())
            .insert_leaf_weighted(5, 10)
            .subtree_sum(tree.root())
            .lca(60, 5) // the new leaf: its LCA with its parent is the parent
            .rank(60);
        let responses = forest.execute(batch.requests(), &mut rng).to_vec();
        assert_eq!(responses[0], Response::SubtreeSum(60));
        assert_eq!(responses[1], Response::InsertedLeaf(60));
        assert_eq!(responses[2], Response::SubtreeSum(70), "weight 10 landed");
        assert_eq!(responses[3], Response::Lca(5));
        let report = forest.last_report();
        assert_eq!(report.sessions, 2);
        assert_eq!(report.inserts, 1);
        assert_eq!(forest.n(), 61);
        // The post-insert queries saw the rebuilt light-first layout.
        let expected_rank = naive_rank(forest.tree(), 60);
        assert_eq!(responses[4], Response::Rank(expected_rank));
    }

    #[test]
    fn repeated_batches_reuse_engines_and_charge_identically() {
        let mut rng = StdRng::seed_from_u64(3);
        let tree = generators::preferential_attachment(300, &mut rng);
        let mut forest = SpatialForest::new(&tree);
        let mut batch = crate::QueryBatch::new();
        for i in 0..50u32 {
            batch.lca(i, (i * 13 + 1) % 300);
            batch.subtree_sum((i * 3) % 300);
            batch.rank((i * 17) % 300);
        }
        let first: Vec<Response> = forest
            .execute(batch.requests(), &mut StdRng::seed_from_u64(9))
            .to_vec();
        let first_report = forest.last_report();
        let builds_after_first = forest.pool().stats().builds;
        for _ in 0..3 {
            let again = forest.execute(batch.requests(), &mut StdRng::seed_from_u64(9));
            assert_eq!(again, &first[..], "answers drifted across reuse");
            assert_eq!(forest.last_report(), first_report, "charges drifted");
        }
        assert_eq!(
            forest.pool().stats().builds,
            builds_after_first,
            "reuse must not rebuild engines"
        );
        assert_eq!(forest.pool().stats().rebinds, 0, "no mutations, no rebinds");
    }

    #[test]
    fn crossover_mode_prices_the_pram_shadow() {
        let mut rng = StdRng::seed_from_u64(4);
        let tree = generators::random_binary(256, &mut rng);
        let mut forest = SpatialForest::with_options(
            &tree,
            ForestOptions {
                crossover: true,
                ..ForestOptions::default()
            },
        );
        let mut batch = crate::QueryBatch::new();
        batch.subtree_sum(0).subtree_sum(100);
        forest.execute(batch.requests(), &mut rng);
        let report = forest.last_report();
        let pram = report.pram.expect("crossover mode prices the shadow");
        assert!(
            pram.energy > report.grid.energy,
            "PRAM simulation must cost more: {} vs {}",
            pram.energy,
            report.grid.energy
        );
    }

    #[test]
    fn single_vertex_forest() {
        let tree = Tree::from_parents(0, vec![spatial_tree::NIL]);
        let mut forest = SpatialForest::new(&tree);
        let mut rng = StdRng::seed_from_u64(5);
        let mut batch = crate::QueryBatch::new();
        batch
            .lca(0, 0)
            .subtree_sum(0)
            .rank(0)
            .insert_leaf(0)
            .rank(1);
        let responses = forest.execute(batch.requests(), &mut rng).to_vec();
        assert_eq!(responses[0], Response::Lca(0));
        assert_eq!(responses[1], Response::SubtreeSum(1));
        assert_eq!(responses[2], Response::Rank(0));
        assert_eq!(responses[3], Response::InsertedLeaf(1));
        assert_eq!(responses[4], Response::Rank(1));
    }

    #[test]
    fn set_weight_changes_sums_without_rebinding() {
        let tree = generators::path(10);
        let mut forest = SpatialForest::new(&tree);
        let mut rng = StdRng::seed_from_u64(6);
        let mut batch = crate::QueryBatch::new();
        batch.subtree_sum(0);
        assert_eq!(
            forest.execute(batch.requests(), &mut rng)[0],
            Response::SubtreeSum(10)
        );
        forest.set_weight(9, 100);
        assert_eq!(
            forest.execute(batch.requests(), &mut rng)[0],
            Response::SubtreeSum(109)
        );
        assert_eq!(forest.pool().stats().rebinds, 0);
    }

    #[test]
    fn snapshot_and_journal_recovery_is_charge_identical() {
        let dir = std::env::temp_dir();
        let snap_path = dir.join(format!("spatial-session-snap-{}", std::process::id()));
        let journal_path = dir.join(format!("spatial-session-journal-{}", std::process::id()));

        let mut rng = StdRng::seed_from_u64(11);
        let tree = generators::uniform_random(80, &mut rng);
        let opts = ForestOptions::default();
        let mut live = SpatialForest::with_options(&tree, opts);

        // Mutate pre-snapshot so the captured state is mid-lifetime.
        let mut warm = crate::QueryBatch::new();
        for i in 0..30u32 {
            warm.insert_leaf(i % 80).lca(i, (i * 7 + 1) % 80);
        }
        live.execute(warm.requests(), &mut StdRng::seed_from_u64(12));
        live.set_weight(3, 41);

        // Checkpoint, then journal a continuation that crosses inserts,
        // weight changes, and a query-triggered rebuild.
        live.snapshot_to(&snap_path, 7).expect("snapshot");
        live.attach_journal(JournalWriter::create(&journal_path).expect("journal"));
        let mut cont = crate::QueryBatch::new();
        for i in 0..40u32 {
            cont.insert_leaf(i % live.n()).subtree_sum(i % 50).rank(i);
        }
        live.execute(cont.requests(), &mut StdRng::seed_from_u64(13));
        live.set_weight(9, 1000);
        live.detach_journal();

        let mut recovered =
            SpatialForest::recover_from(&snap_path, &journal_path, opts).expect("recover");
        assert_eq!(recovered.n(), live.n());
        assert_eq!(recovered.dynamic_stats(), live.dynamic_stats());
        assert_eq!(recovered.layout().order(), live.layout().order());

        // The future is pinned: identical answers AND identical charges.
        let mut probe = crate::QueryBatch::new();
        for i in 0..25u32 {
            probe
                .lca(i, (i * 13 + 2) % 100)
                .subtree_sum(i * 4)
                .rank(i * 3);
        }
        let a = live
            .execute(probe.requests(), &mut StdRng::seed_from_u64(14))
            .to_vec();
        let b = recovered
            .execute(probe.requests(), &mut StdRng::seed_from_u64(14))
            .to_vec();
        assert_eq!(a, b, "answers diverged after recovery");
        assert_eq!(
            live.last_report(),
            recovered.last_report(),
            "charges diverged after recovery"
        );

        // The snapshot preserved the caller's tag verbatim.
        let snap = spatial_store::ForestSnapshot::read_from(&snap_path).expect("reread");
        assert_eq!(snap.tag, 7);

        std::fs::remove_file(&snap_path).ok();
        std::fs::remove_file(&journal_path).ok();
    }

    #[test]
    fn charged_layout_build_reports_phases() {
        let mut rng = StdRng::seed_from_u64(7);
        let tree = generators::uniform_random(300, &mut rng);
        let mut forest = SpatialForest::new(&tree);
        let report = forest.charged_layout_build(&mut rng);
        assert!(report.total().energy > 0);
        assert!(forest.pool().has_layout_engine());
        // A second call reuses the pooled engine.
        let builds = forest.pool().stats().builds;
        forest.charged_layout_build(&mut rng);
        assert_eq!(forest.pool().stats().builds, builds);
    }
}
