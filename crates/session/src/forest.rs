//! [`SpatialForest`]: one tree + layout, pooled engines, mixed query
//! batches in charge-batched sessions.

use crate::batch::{Request, Response, SessionReport};
use crate::pool::EnginePool;
use rand::Rng;
use spatial_euler::ranking::{END, UNRANKED};
use spatial_euler::tour::{down, EulerTour};
use spatial_layout::{DynamicLayout, DynamicStats, Layout, SpatialBuildReport};
use spatial_model::{CurveKind, Machine, PagedMachine, PagingConfig, PagingReport, Slot};
use spatial_store::{
    CowSlab, DirtyExtents, ForestSnapshot, JournalWriter, MappedSnapshot, Record, StoreError,
};
use spatial_tree::{ChildrenCsr, NodeId, Tree};
use spatial_treefix::Add;
use std::path::Path;
use std::sync::Arc;

/// Construction options for [`SpatialForest`].
#[derive(Debug, Clone, Copy)]
pub struct ForestOptions {
    /// Space-filling curve family of the layout and machine.
    pub curve: CurveKind,
    /// Kernel-energy degradation factor before the dynamic layout
    /// rebuilds itself (see [`DynamicLayout`]).
    pub rebuild_factor: f64,
    /// Crossover mode: shadow-price every subtree-sum session on the
    /// §I-C PRAM simulation and report both ([`SessionReport::pram`]).
    pub crossover: bool,
    /// Base seed of the PRAM shadow engine's hashed cell placement.
    pub pram_seed: u64,
    /// Out-of-core charge model: when set, a mapped-backed forest
    /// tracks slab residency under this budget and prices every
    /// cold-page touch as a long-distance message
    /// ([`SessionReport::paging`]). `None` (the default) reports no
    /// paging rows and keeps every report bit-identical to pre-paging
    /// builds.
    pub paging: Option<PagingConfig>,
}

impl Default for ForestOptions {
    fn default() -> Self {
        ForestOptions {
            curve: CurveKind::Hilbert,
            rebuild_factor: 2.0,
            crossover: false,
            pram_seed: 0x5eed_0f0e,
            paging: None,
        }
    }
}

/// How a recovered forest holds its snapshot slabs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForestBacking {
    /// Slabs decoded into owned heap memory (the classic path).
    Owned,
    /// Slabs served zero-copy from an mmap'd snapshot, promoted to
    /// owned memory lazily on first mutation (CoW). Falls back to
    /// `Owned` when the on-disk snapshot is a v1 file.
    Mapped,
}

/// What [`SpatialForest::checkpoint_to`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Total bytes written (delta + in-place patch, or the full file).
    pub bytes_written: u64,
    /// Whether the incremental (dirty-extent) path was taken.
    pub incremental: bool,
}

/// Dirty state since the last on-disk snapshot generation — what
/// [`SpatialForest::checkpoint_to`] turns into an incremental delta.
#[derive(Debug, Default)]
struct DirtyTracker {
    /// `(n, reserved, slab_crcs)` of the base generation on disk;
    /// `None` when no generation exists to patch against.
    base: Option<(u32, u64, [u32; 3])>,
    /// A rebuild permuted the whole order slab since the base.
    order_rewritten: bool,
    /// A capacity growth invalidated every slab offset since the base.
    grew: bool,
    /// Weight cells overwritten below the base vertex count.
    weight_cells: Vec<u32>,
}

/// `&[u64]` → `&[Add]`, no copy. Sound because `Add` is
/// `#[repr(transparent)]` over `u64`.
fn as_add(weights: &[u64]) -> &[Add] {
    unsafe { std::slice::from_raw_parts(weights.as_ptr().cast::<Add>(), weights.len()) }
}

/// A tree held in a light-first layout with a pool of retained engines,
/// serving mixed query batches. See the crate docs for the model and
/// `DESIGN.md` for the lifecycle details.
pub struct SpatialForest {
    opts: ForestOptions,
    /// The tree + its incrementally maintained layout (owns both).
    dynamic: DynamicLayout,
    /// Mutation epoch: bumped by every insert and forced relayout;
    /// engines bound at an older epoch rebind before running.
    epoch: u64,
    /// Whether tail appends have left the layout non-light-first (the
    /// batched LCA engine requires light-first; other engines only
    /// charge more on a degraded layout).
    layout_dirty: bool,
    /// Whether an execute is in flight (report-folding guard).
    in_execute: bool,

    // ---- Materialized structure cache (refreshed per epoch). ----
    structure_epoch: u64,
    tree: Tree,
    parents: Vec<NodeId>,
    slots: Vec<Slot>,
    csr_sizes: Vec<u32>,
    csr: ChildrenCsr,
    tour_next: Vec<u32>,
    tour_start: u32,
    /// Grid machine over the layout's true curve geometry.
    machine: Machine,
    /// 2-slots-per-vertex machine for the Euler-tour ranking sessions.
    dart_machine: Machine,

    // ---- Per-vertex query values. ----
    /// Subtree-sum weights: owned, or a zero-copy view over the mapped
    /// snapshot until the first weight mutation promotes it (CoW).
    /// Served to the treefix as `&[Add]` via the `repr(transparent)`
    /// cast — no shadow array.
    weights: CowSlab<u64>,

    // ---- Out-of-core state (mapped backing only). ----
    /// How this forest was restored.
    backing: ForestBacking,
    /// The mapped snapshot serving un-promoted slabs (kept alive here
    /// and inside each [`CowSlab`] view).
    mapped: Option<Arc<MappedSnapshot>>,
    /// Residency tracker pricing cold-page touches (paging opt-in).
    pager: Option<PagedMachine>,
    /// Journal records replayed into this forest since construction.
    replayed: u64,
    /// Dirty extents since the last checkpoint generation.
    dirty: DirtyTracker,

    /// When attached, every durable mutation (insert, weight change,
    /// query-triggered rebuild) is appended here **before** it is
    /// applied in memory, so the journaled history is never behind the
    /// live state. Journal IO failure is fail-stop (panic): continuing
    /// would silently diverge the durable history from the forest.
    journal: Option<JournalWriter>,

    pool: EnginePool,

    // ---- Retained batch scratch (zero steady-state allocation). ----
    responses: Vec<Response>,
    lca_q: Vec<(NodeId, NodeId)>,
    lca_idx: Vec<u32>,
    lca_answers: Vec<NodeId>,
    sum_v: Vec<NodeId>,
    sum_idx: Vec<u32>,
    rank_v: Vec<NodeId>,
    rank_idx: Vec<u32>,

    session: SessionReport,
}

impl SpatialForest {
    /// A forest over `tree` with unit weights and default options
    /// (Hilbert curve, rebuild factor 2, no crossover shadow).
    pub fn new(tree: &Tree) -> Self {
        Self::with_options(tree, ForestOptions::default())
    }

    /// [`SpatialForest::new`] on an explicit curve family.
    pub fn with_curve(tree: &Tree, curve: CurveKind) -> Self {
        Self::with_options(
            tree,
            ForestOptions {
                curve,
                ..ForestOptions::default()
            },
        )
    }

    /// A forest with explicit options; weights start at 1 per vertex
    /// (adjust with [`SpatialForest::set_weight`]).
    pub fn with_options(tree: &Tree, opts: ForestOptions) -> Self {
        let n = tree.n() as usize;
        let dynamic = DynamicLayout::new(tree, opts.curve, opts.rebuild_factor);
        Self::from_dynamic(
            dynamic,
            CowSlab::owned(vec![1; n]),
            false,
            opts,
            ForestBacking::Owned,
            None,
        )
    }

    /// The shared constructor: wraps an already-built dynamic layout
    /// (fresh from [`DynamicLayout::new`] or restored from a snapshot,
    /// owned or mapped) with the forest's caches, machines, and engine
    /// pool.
    fn from_dynamic(
        dynamic: DynamicLayout,
        weights: CowSlab<u64>,
        layout_dirty: bool,
        opts: ForestOptions,
        backing: ForestBacking,
        mapped: Option<Arc<MappedSnapshot>>,
    ) -> Self {
        let n = dynamic.n() as usize;
        assert_eq!(weights.len(), n, "one weight per vertex");
        let tree = dynamic.tree();
        let mut forest = SpatialForest {
            opts,
            dynamic,
            epoch: 0,
            layout_dirty,
            in_execute: false,
            structure_epoch: u64::MAX,
            tree: Tree::from_parents(0, vec![spatial_tree::NIL]),
            parents: Vec::with_capacity(n),
            slots: Vec::with_capacity(n),
            csr_sizes: Vec::with_capacity(n),
            csr: ChildrenCsr::by_size(&tree, &tree.subtree_sizes()),
            tour_next: Vec::with_capacity(2 * n),
            tour_start: END,
            machine: Machine::on_curve(opts.curve, 1),
            dart_machine: Machine::on_curve(opts.curve, 1),
            weights,
            backing,
            mapped,
            pager: opts.paging.map(PagedMachine::new),
            replayed: 0,
            dirty: DirtyTracker::default(),
            journal: None,
            pool: EnginePool::new(opts.curve, n, opts.pram_seed),
            responses: Vec::new(),
            lca_q: Vec::new(),
            lca_idx: Vec::new(),
            lca_answers: Vec::new(),
            sum_v: Vec::new(),
            sum_idx: Vec::new(),
            rank_v: Vec::new(),
            rank_idx: Vec::new(),
            session: SessionReport::default(),
        };
        forest.refresh_structure();
        forest
    }

    /// Current number of vertices.
    pub fn n(&self) -> u32 {
        self.dynamic.n()
    }

    /// The current tree (materialized; refreshes the structure cache
    /// if the last batch mutated the tree).
    pub fn tree(&mut self) -> &Tree {
        self.ensure_structure();
        &self.tree
    }

    /// The current layout (valid until the next mutating batch).
    pub fn layout(&self) -> &Layout {
        self.dynamic.layout()
    }

    /// The dynamic layout's lifetime statistics (inserts, rebuilds,
    /// capacity growths).
    pub fn dynamic_stats(&self) -> DynamicStats {
        self.dynamic.stats()
    }

    /// The engine pool (build/rebind observability).
    pub fn pool(&self) -> &EnginePool {
        &self.pool
    }

    /// Charges of the most recent [`SpatialForest::execute`].
    pub fn last_report(&self) -> SessionReport {
        self.session
    }

    /// The subtree-sum weight of a vertex.
    pub fn weight(&self, v: NodeId) -> u64 {
        self.weights.as_slice()[v as usize]
    }

    /// Sets the subtree-sum weight of a vertex (no relayout — weights
    /// are per-session treefix inputs, not structure).
    pub fn set_weight(&mut self, v: NodeId, weight: u64) {
        if let Some(journal) = self.journal.as_mut() {
            journal
                .append(Record::SetWeight { vertex: v, weight })
                .expect("journal append failed (fail-stop)");
        }
        self.set_weight_inner(v, weight);
    }

    /// The weight mutation shared by [`SpatialForest::set_weight`] and
    /// journal replay: charges/promotes the mapped weight slab and
    /// tracks the dirty cell for incremental checkpoints.
    fn set_weight_inner(&mut self, v: NodeId, weight: u64) {
        if self.weights.is_mapped() {
            // Promotion reads the whole slab once to copy it.
            self.touch_weights_span();
        }
        let cap = self.dynamic.reserved() as usize;
        self.weights.make_mut(cap)[v as usize] = weight;
        if let Some((base_n, _, _)) = self.dirty.base {
            if v < base_n {
                self.dirty.weight_cells.push(v);
            }
        }
    }

    // ---- Out-of-core accessors + paging charges. ----

    /// How this forest holds its snapshot slabs.
    pub fn backing(&self) -> ForestBacking {
        self.backing
    }

    /// Whether any slab is still served zero-copy from the mapped
    /// snapshot (no promoting mutation yet).
    pub fn any_slab_mapped(&self) -> bool {
        self.weights.is_mapped() || self.dynamic.parents_backing_mapped()
    }

    /// Journal records replayed into this forest since construction
    /// ([`SpatialForest::apply_journal`] /
    /// [`SpatialForest::recover_with`]).
    pub fn replayed_records(&self) -> u64 {
        self.replayed
    }

    /// Lifetime paging charges (construction + every session), when
    /// paging is configured.
    pub fn paging_lifetime(&self) -> Option<PagingReport> {
        self.pager.as_ref().map(|p| p.lifetime())
    }

    /// The model price of one cold-page fetch: a message across the
    /// grid diameter — the farthest a long-distance fetch can travel.
    fn fault_energy(&self) -> u64 {
        (2 * (self.machine.side() as u64).saturating_sub(1)).max(1)
    }

    /// Charges a touch of the mapped parents slab (if still mapped).
    fn touch_parents_span(&mut self) {
        if !self.dynamic.parents_backing_mapped() {
            return;
        }
        let energy = self.fault_energy();
        if let (Some(pager), Some(mapped)) = (self.pager.as_mut(), self.mapped.as_ref()) {
            let (off, len) = mapped.parents_span();
            pager.touch_range(off, len, energy);
        }
    }

    /// Charges a touch of the mapped weights slab (if still mapped).
    fn touch_weights_span(&mut self) {
        if !self.weights.is_mapped() {
            return;
        }
        let energy = self.fault_energy();
        if let (Some(pager), Some(mapped)) = (self.pager.as_mut(), self.mapped.as_ref()) {
            let (off, len) = mapped.weights_span();
            pager.touch_range(off, len, energy);
        }
    }

    /// Folds any accumulated paging charges into the pager's lifetime
    /// meters without attributing them to a session — construction and
    /// warmstart reads use this so the first execute's report stays
    /// comparable.
    fn absorb_paging_into_lifetime(&mut self) {
        if let Some(pager) = self.pager.as_mut() {
            let _ = pager.commit_session();
        }
    }

    // ---- Durability: snapshot + journal + recovery. ----

    /// Captures the forest's durable state (tree structure, layout
    /// order and reserve, weights, rebuild-threshold anchor) as a
    /// [`ForestSnapshot`]. `tag` is stored verbatim for the caller —
    /// the serve layer keeps its journal generation there.
    ///
    /// Restoring the snapshot ([`SpatialForest::from_snapshot`]) and
    /// replaying any later journal ([`SpatialForest::apply_journal`])
    /// yields a forest that is *bit-identical going forward*: the same
    /// answers **and** the same [`SessionReport`] charges for every
    /// future batch, including the same rebuild/growth schedule.
    pub fn snapshot(&self, tag: u64) -> ForestSnapshot {
        let stats = self.dynamic.stats();
        let curve = CurveKind::ALL
            .iter()
            .position(|&c| c == self.opts.curve)
            .expect("every curve kind is in CurveKind::ALL") as u32;
        ForestSnapshot {
            curve,
            root: self.dynamic.root(),
            layout_dirty: self.layout_dirty,
            rebuilds: stats.rebuilds,
            grows: stats.grows,
            reserved: self.dynamic.reserved(),
            baseline_energy: stats.baseline_energy,
            insertions: stats.insertions,
            tag,
            parents: self.dynamic.parents().to_vec(),
            order: self.dynamic.layout().order().to_vec(),
            weights: self.weights.as_slice().to_vec(),
        }
    }

    /// [`SpatialForest::snapshot`] written to `path` via temp-file +
    /// atomic rename (readers never observe a partial snapshot).
    pub fn snapshot_to(&self, path: impl AsRef<Path>, tag: u64) -> std::io::Result<()> {
        self.snapshot(tag).write_to(path)
    }

    /// Restores a forest from a snapshot. The curve family comes from
    /// the snapshot (overriding `opts.curve`); `rebuild_factor`,
    /// `crossover`, and `pram_seed` are not persisted and must be
    /// passed unchanged for charge-identical recovery.
    pub fn from_snapshot(snap: &ForestSnapshot, opts: ForestOptions) -> Self {
        let curve = *CurveKind::ALL
            .get(snap.curve as usize)
            .expect("snapshot curve index out of range");
        let opts = ForestOptions { curve, ..opts };
        let dynamic = DynamicLayout::restore(
            snap.root,
            snap.parents.clone(),
            curve,
            snap.order.clone(),
            snap.reserved,
            opts.rebuild_factor,
            DynamicStats {
                insertions: snap.insertions,
                rebuilds: snap.rebuilds,
                grows: snap.grows,
                baseline_energy: snap.baseline_energy,
            },
        );
        let mut forest = Self::from_dynamic(
            dynamic,
            CowSlab::owned(snap.weights.clone()),
            snap.layout_dirty,
            opts,
            ForestBacking::Owned,
            None,
        );
        // Track this snapshot as the incremental-checkpoint base; if
        // the file under it turns out to differ (stale, v1, rewritten),
        // the strict writer-side CRC validation falls back to a full
        // rewrite.
        forest.dirty.base = Some((snap.parents.len() as u32, snap.reserved, snap.slab_crcs()));
        forest
    }

    /// Restores a forest zero-copy over a mapped snapshot: the parents
    /// and weights slabs stay borrowed views into `snap`'s region until
    /// a mutation promotes them (CoW); queries run directly over the
    /// mapped bytes. With [`ForestOptions::paging`] set, the
    /// construction-time slab reads are charged to the pager's lifetime
    /// meters (not the first session).
    pub fn from_mapped(snap: &Arc<MappedSnapshot>, opts: ForestOptions) -> Self {
        let header = *snap.header();
        let curve = *CurveKind::ALL
            .get(header.curve as usize)
            .expect("snapshot curve index out of range");
        let opts = ForestOptions { curve, ..opts };
        let dynamic = DynamicLayout::restore_slab(
            header.root,
            snap.parents_slab(),
            curve,
            // The order slab is consumed by the layout's derived
            // structures either way; copying it here is the one
            // construction-time read the mapped backing cannot avoid.
            snap.order().to_vec(),
            header.reserved,
            opts.rebuild_factor,
            DynamicStats {
                insertions: header.insertions,
                rebuilds: header.rebuilds,
                grows: header.grows,
                baseline_energy: header.baseline_energy,
            },
        );
        let mut forest = Self::from_dynamic(
            dynamic,
            snap.weights_slab(),
            header.layout_dirty,
            opts,
            ForestBacking::Mapped,
            Some(snap.clone()),
        );
        // Price what construction actually read — the parents slab
        // (tree + structure caches) and the order slab — and absorb it
        // into the lifetime meters.
        if forest.pager.is_some() {
            let energy = forest.fault_energy();
            let spans = [snap.parents_span(), snap.order_span()];
            let pager = forest.pager.as_mut().expect("checked above");
            for (off, len) in spans {
                pager.touch_range(off, len, energy);
            }
            forest.absorb_paging_into_lifetime();
        }
        forest.dirty.base = Some((header.n, header.reserved, snap.slab_crcs()));
        forest
    }

    /// Full crash recovery: load the snapshot at `snapshot_path`, then
    /// replay every intact record of the journal at `journal_path` (a
    /// missing journal file is an empty history). The journal's torn
    /// tail, if any, is silently dropped — see `spatial_store`.
    pub fn recover_from(
        snapshot_path: impl AsRef<Path>,
        journal_path: impl AsRef<Path>,
        opts: ForestOptions,
    ) -> Result<Self, StoreError> {
        Self::recover_with(snapshot_path, journal_path, opts, ForestBacking::Owned)
    }

    /// [`SpatialForest::recover_from`] with an explicit backing. A
    /// pending incremental-checkpoint delta is applied first (crash
    /// recovery); `Mapped` falls back to the owned decoder when the
    /// snapshot on disk is a v1 file. An empty journal skips the replay
    /// loop entirely ([`SpatialForest::replayed_records`] stays 0).
    pub fn recover_with(
        snapshot_path: impl AsRef<Path>,
        journal_path: impl AsRef<Path>,
        opts: ForestOptions,
        backing: ForestBacking,
    ) -> Result<Self, StoreError> {
        let snapshot_path = snapshot_path.as_ref();
        let mut forest = match backing {
            ForestBacking::Mapped => match MappedSnapshot::open(snapshot_path) {
                Ok(mapped) => Self::from_mapped(&Arc::new(mapped), opts),
                Err(StoreError::UnsupportedVersion(1)) => {
                    let snap = ForestSnapshot::read_from(snapshot_path)?;
                    Self::from_snapshot(&snap, opts)
                }
                Err(e) => return Err(e),
            },
            ForestBacking::Owned => {
                spatial_store::apply_pending_delta(snapshot_path)?;
                let snap = ForestSnapshot::read_from(snapshot_path)?;
                Self::from_snapshot(&snap, opts)
            }
        };
        let records = spatial_store::read_journal(journal_path)?;
        if !records.is_empty() {
            forest.apply_journal(&records);
        }
        Ok(forest)
    }

    /// Replays journal records against the restored forest, in order,
    /// returning how many were applied. [`Record::RngState`] markers
    /// are skipped — session RNG recovery belongs to the serve layer,
    /// which owns the RNG.
    pub fn apply_journal(&mut self, records: &[Record]) -> u64 {
        for rec in records {
            match *rec {
                Record::InsertLeaf { parent, weight } => {
                    self.insert_leaf_inner(parent, weight);
                }
                Record::SetWeight { vertex, weight } => {
                    self.set_weight_inner(vertex, weight);
                }
                Record::Rebuild => {
                    self.touch_parents_span();
                    self.dynamic.rebuild();
                    self.dirty.order_rewritten = true;
                    self.layout_dirty = false;
                    self.epoch += 1;
                }
                Record::RngState(_) => {}
            }
        }
        self.replayed += records.len() as u64;
        records.len() as u64
    }

    /// Writes the current state over the snapshot at `path`,
    /// incrementally when possible: if the file still carries the
    /// tracked base generation (same capacity, no grow since, matching
    /// per-slab CRCs), only the dirty extents are patched through the
    /// crash-safe delta protocol ([`spatial_store::write_incremental`]);
    /// otherwise the full snapshot is rewritten atomically. Either way
    /// the tracker rebases onto the written generation.
    pub fn checkpoint_to(
        &mut self,
        path: impl AsRef<Path>,
        tag: u64,
    ) -> Result<CheckpointStats, StoreError> {
        let path = path.as_ref();
        let snap = self.snapshot(tag);
        if let Some((base_n, base_reserved, base_crcs)) = self.dirty.base {
            if !self.dirty.grew && snap.reserved == base_reserved {
                let extents = DirtyExtents {
                    base_len: base_n,
                    order_rewritten: self.dirty.order_rewritten,
                    weight_cells: std::mem::take(&mut self.dirty.weight_cells),
                };
                match spatial_store::write_incremental(path, &snap, &extents, base_crcs)? {
                    Some(bytes_written) => {
                        self.rebase(&snap);
                        return Ok(CheckpointStats {
                            bytes_written,
                            incremental: true,
                        });
                    }
                    // The base on disk didn't validate — put the cells
                    // back (harmless if the full rewrite below also
                    // fails) and fall through.
                    None => self.dirty.weight_cells = extents.weight_cells,
                }
            }
        }
        // Full rewrite. Retire any pending delta *first* so no state
        // exists where a stale delta could later patch the new base.
        spatial_store::apply_pending_delta(path)?;
        let bytes = snap.encode();
        spatial_store::atomic_write(path, &bytes)?;
        self.rebase(&snap);
        Ok(CheckpointStats {
            bytes_written: bytes.len() as u64,
            incremental: false,
        })
    }

    /// Rebases the dirty tracker onto a just-written generation.
    fn rebase(&mut self, snap: &ForestSnapshot) {
        self.dirty = DirtyTracker {
            base: Some((snap.parents.len() as u32, snap.reserved, snap.slab_crcs())),
            ..DirtyTracker::default()
        };
    }

    /// Pre-sizes the engine pool and batch scratch for this forest's
    /// reserved capacity (the snapshot header's `reserved` after a
    /// recovery) and `batch_hint` requests per execute, so the first
    /// post-restart session allocates nothing on the steady-state
    /// path. Charge-neutral: engine construction is host-side and the
    /// LCA engine is only pre-built when the layout is already
    /// light-first (building it on a dirty layout would change the
    /// journaled rebuild schedule).
    pub fn warmstart(&mut self, batch_hint: usize) {
        self.ensure_structure();
        let cap = self.dynamic.reserved().max(self.n() as u64) as usize;
        self.pool.reserve_treefix(cap);
        if !self.layout_dirty {
            self.pool
                .lca_for(self.epoch, self.dynamic.layout(), &self.tree);
        }
        self.pool
            .ranking_for(self.epoch, &self.tour_next, self.tour_start);
        self.responses.reserve(batch_hint);
        self.lca_q.reserve(batch_hint);
        self.lca_idx.reserve(batch_hint);
        self.lca_answers.reserve(batch_hint);
        self.sum_v.reserve(batch_hint);
        self.sum_idx.reserve(batch_hint);
        self.rank_v.reserve(batch_hint);
        self.rank_idx.reserve(batch_hint);
        // Any mapped-slab reads the warmstart performed are lifetime
        // charges, not first-session ones.
        self.absorb_paging_into_lifetime();
    }

    /// Starts journaling: every subsequent durable mutation is appended
    /// to `writer` before being applied (write-ahead).
    pub fn attach_journal(&mut self, writer: JournalWriter) {
        self.journal = Some(writer);
    }

    /// Stops journaling and hands the writer back (the checkpoint path:
    /// snapshot, then switch to a fresh journal generation).
    pub fn detach_journal(&mut self) -> Option<JournalWriter> {
        self.journal.take()
    }

    /// The attached journal, if any — the serve layer appends its
    /// [`Record::RngState`] session commit markers through this.
    pub fn journal_mut(&mut self) -> Option<&mut JournalWriter> {
        self.journal.as_mut()
    }

    /// The insert-leaf mutation shared by the execute path and journal
    /// replay: extends the dynamic layout and the weight arrays, and
    /// tracks whether the append left the layout non-light-first.
    fn insert_leaf_inner(&mut self, parent: NodeId, weight: u64) -> NodeId {
        // The first structural mutation promotes the mapped slabs
        // (each promotion reads its whole slab once to copy it).
        self.touch_parents_span();
        if self.weights.is_mapped() {
            self.touch_weights_span();
        }
        let before = self.dynamic.stats();
        let v = self.dynamic.insert_leaf(parent);
        let after = self.dynamic.stats();
        // An insert dirties the light-first order unless the dynamic
        // layout's quality threshold rebuilt it on the spot (the
        // rebuild runs after the append).
        self.layout_dirty = after.rebuilds == before.rebuilds;
        if after.rebuilds != before.rebuilds {
            self.dirty.order_rewritten = true;
        }
        if after.grows != before.grows {
            self.dirty.grew = true;
        }
        let cap = self.dynamic.reserved() as usize;
        self.weights.make_mut(cap).push(weight);
        self.epoch += 1;
        v
    }

    /// Runs the §IV on-machine layout construction for the current
    /// tree through the pooled [`spatial_layout::LayoutEngine`],
    /// returning its per-phase charge report. (The forest's live
    /// layout is host-maintained; this prices what building it on the
    /// machine would cost — the E5 experiment as a service call.)
    pub fn charged_layout_build<R: Rng>(&mut self, rng: &mut R) -> SpatialBuildReport {
        self.ensure_structure();
        let engine = self.pool.layout_engine_for(self.epoch, &self.tree);
        engine.build_into(rng)
    }

    /// Executes a mixed request stream. Consecutive queries between
    /// mutations form one *charge-batched session*: each query kind in
    /// a session pays for a single engine run, however many queries
    /// share it. Responses align with `requests` by index; machine
    /// charges land in [`SpatialForest::last_report`].
    pub fn execute<R: Rng>(&mut self, requests: &[Request], rng: &mut R) -> &[Response] {
        self.machine.reset();
        self.dart_machine.reset();
        self.session = SessionReport::default();
        self.in_execute = true;
        self.responses.clear();
        // Drop any queries a previous execute left behind (it can only
        // happen if a caller caught a panic mid-flush and reused the
        // forest — stale indices must not corrupt this batch).
        self.lca_q.clear();
        self.lca_idx.clear();
        self.sum_v.clear();
        self.sum_idx.clear();
        self.rank_v.clear();
        self.rank_idx.clear();

        for (i, &req) in requests.iter().enumerate() {
            match req {
                Request::Lca(a, b) => {
                    self.lca_q.push((a, b));
                    self.lca_idx.push(i as u32);
                    self.responses.push(Response::Lca(spatial_tree::NIL));
                }
                Request::SubtreeSum(v) => {
                    self.sum_v.push(v);
                    self.sum_idx.push(i as u32);
                    self.responses.push(Response::SubtreeSum(0));
                }
                Request::Rank(v) => {
                    self.rank_v.push(v);
                    self.rank_idx.push(i as u32);
                    self.responses.push(Response::Rank(0));
                }
                Request::InsertLeaf { parent, weight } => {
                    self.flush_session(rng);
                    if let Some(journal) = self.journal.as_mut() {
                        journal
                            .append(Record::InsertLeaf { parent, weight })
                            .expect("journal append failed (fail-stop)");
                    }
                    let v = self.insert_leaf_inner(parent, weight);
                    self.session.inserts += 1;
                    self.responses.push(Response::InsertedLeaf(v));
                }
            }
        }
        self.flush_session(rng);

        self.in_execute = false;
        self.session.grid = self.session.grid + self.machine.report();
        self.session.ranking = self.session.ranking + self.dart_machine.report();
        // Publish the session's paging charges in one batch (the
        // LocalCharge discipline): owned backings report `None`.
        if let Some(pager) = self.pager.as_mut() {
            self.session.paging = Some(pager.commit_session());
        }
        &self.responses
    }

    /// Restores the light-first order after tail appends (the batched
    /// LCA engine's correctness precondition) and bumps the epoch so
    /// slot-dependent engine bindings refresh.
    fn ensure_light_first(&mut self) {
        if self.layout_dirty {
            // Query-triggered rebuilds depend on which queries arrived,
            // not just the insert stream — they must be journaled or
            // replay would diverge. (Threshold rebuilds inside an
            // insert are deterministic and are not.)
            if let Some(journal) = self.journal.as_mut() {
                journal
                    .append(Record::Rebuild)
                    .expect("journal append failed (fail-stop)");
            }
            self.touch_parents_span();
            self.dynamic.rebuild();
            self.dirty.order_rewritten = true;
            self.layout_dirty = false;
            self.epoch += 1;
        }
    }

    fn ensure_structure(&mut self) {
        if self.structure_epoch != self.epoch {
            self.refresh_structure();
        }
    }

    /// Rebuilds the materialized structure cache and both machines
    /// from the dynamic layout (the mutation path — allocation is
    /// allowed and amortized here, never on the query path).
    fn refresh_structure(&mut self) {
        // Fold the outgoing machines' charges into the in-flight
        // report before replacing them mid-execute.
        if self.in_execute {
            self.session.grid = self.session.grid + self.machine.report();
            self.session.ranking = self.session.ranking + self.dart_machine.report();
        }
        self.tree = self.dynamic.tree();
        let n = self.tree.n();
        self.parents.clear();
        self.parents.extend_from_slice(self.tree.parents());
        let layout = self.dynamic.layout();
        self.slots.clear();
        self.slots.extend((0..n).map(|v| layout.slot(v)));
        self.csr_sizes.clear();
        self.csr_sizes.extend_from_slice(&self.tree.subtree_sizes());
        self.csr = ChildrenCsr::by_size(&self.tree, &self.csr_sizes);
        if n == 1 {
            self.tour_next.clear();
            self.tour_next.extend_from_slice(&[END, END]);
            self.tour_start = END;
        } else {
            let tour = EulerTour::light_first_from_csr(&self.tree, &self.csr);
            self.tour_next.clear();
            self.tour_next.extend_from_slice(tour.next_darts());
            self.tour_start = tour.start();
        }
        // The grid machine mirrors the layout's actual curve cells
        // (`Layout::machine` prices capacity-reserved tails correctly).
        self.machine = layout.machine();
        self.dart_machine = Machine::on_curve(self.opts.curve, 2 * n);
        self.structure_epoch = self.epoch;
    }

    /// Flushes the buffered query session: one charged engine run per
    /// kind present, in the fixed order LCA → subtree sums → ranks.
    fn flush_session<R: Rng>(&mut self, rng: &mut R) {
        if self.lca_q.is_empty() && self.sum_v.is_empty() && self.rank_v.is_empty() {
            return;
        }
        if !self.lca_q.is_empty() {
            self.ensure_light_first();
        }
        self.ensure_structure();
        self.session.sessions += 1;

        if !self.lca_q.is_empty() {
            let engine = self
                .pool
                .lca_for(self.epoch, self.dynamic.layout(), &self.tree);
            engine.run_into(&self.machine, &self.lca_q, &mut self.lca_answers, rng);
            for (&idx, &w) in self.lca_idx.iter().zip(self.lca_answers.iter()) {
                self.responses[idx as usize] = Response::Lca(w);
            }
            self.session.lca_queries += self.lca_q.len() as u32;
            self.lca_q.clear();
            self.lca_idx.clear();
        }

        if !self.sum_v.is_empty() {
            // The treefix reads every weight; a still-mapped slab pays
            // its residency before the engine runs.
            self.touch_weights_span();
            self.pool.reserve_treefix(self.tree.n() as usize);
            self.pool.treefix.bind_parts(
                &self.parents,
                &self.slots,
                &self.csr,
                as_add(self.weights.as_slice()),
                true,
            );
            self.pool.treefix.contract(&self.machine, rng);
            let sums = self.pool.treefix.uncontract_bottom_up(&self.machine);
            for (&idx, &v) in self.sum_idx.iter().zip(self.sum_v.iter()) {
                self.responses[idx as usize] = Response::SubtreeSum(sums[v as usize].0);
            }
            self.session.sum_queries += self.sum_v.len() as u32;

            if self.opts.crossover {
                let (pram, treefix) = self.pool.pram_for(self.epoch, &self.tree);
                pram.reset();
                treefix.subtree_sums(pram, self.weights.as_slice(), rng);
                let shadow = pram.report();
                self.session.pram = Some(self.session.pram.unwrap_or_default() + shadow);
            }
            self.sum_v.clear();
            self.sum_idx.clear();
        }

        if !self.rank_v.is_empty() {
            let engine = self
                .pool
                .ranking_for(self.epoch, &self.tour_next, self.tour_start);
            engine.rank(&self.dart_machine, rng);
            let root = self.tree.root();
            for (&idx, &v) in self.rank_idx.iter().zip(self.rank_v.iter()) {
                assert!(v < self.tree.n(), "rank query {v} out of range");
                let rank = if v == root {
                    0
                } else {
                    let r = engine.ranks()[down(v) as usize];
                    debug_assert_ne!(r, UNRANKED, "non-root vertex off the tour");
                    r + 1
                };
                self.responses[idx as usize] = Response::Rank(rank);
            }
            self.session.rank_queries += self.rank_v.len() as u32;
            self.rank_v.clear();
            self.rank_idx.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_euler::ranking::rank_sequential;
    use spatial_tree::generators;

    fn naive_lca(tree: &Tree, mut a: NodeId, mut b: NodeId) -> NodeId {
        let depth = |mut v: NodeId| {
            let mut d = 0u32;
            while let Some(p) = tree.parent(v) {
                v = p;
                d += 1;
            }
            d
        };
        let (mut da, mut db) = (depth(a), depth(b));
        while da > db {
            a = tree.parent(a).unwrap();
            da -= 1;
        }
        while db > da {
            b = tree.parent(b).unwrap();
            db -= 1;
        }
        while a != b {
            a = tree.parent(a).unwrap();
            b = tree.parent(b).unwrap();
        }
        a
    }

    fn naive_subtree_sum(tree: &Tree, weights: &[u64], v: NodeId) -> u64 {
        let mut sum = weights[v as usize];
        for c in tree.children(v) {
            sum += naive_subtree_sum(tree, weights, *c);
        }
        sum
    }

    fn naive_rank(tree: &Tree, v: NodeId) -> u64 {
        if v == tree.root() {
            return 0;
        }
        let sizes = tree.subtree_sizes();
        let csr = ChildrenCsr::by_size(tree, &sizes);
        let tour = EulerTour::light_first_from_csr(tree, &csr);
        rank_sequential(tour.next_darts(), tour.start())[down(v) as usize] + 1
    }

    #[test]
    fn mixed_batch_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        let tree = generators::uniform_random(200, &mut rng);
        let mut forest = SpatialForest::new(&tree);
        let mut batch = crate::QueryBatch::new();
        for i in 0..40u32 {
            batch.lca(i * 3 % 200, i * 7 % 200);
            batch.subtree_sum(i * 5 % 200);
            batch.rank(i * 11 % 200);
        }
        let responses = forest.execute(batch.requests(), &mut rng).to_vec();
        let weights = vec![1u64; 200];
        for (req, resp) in batch.requests().iter().zip(&responses) {
            match (*req, *resp) {
                (Request::Lca(a, b), Response::Lca(w)) => {
                    assert_eq!(w, naive_lca(&tree, a, b), "lca({a},{b})")
                }
                (Request::SubtreeSum(v), Response::SubtreeSum(s)) => {
                    assert_eq!(s, naive_subtree_sum(&tree, &weights, v), "sum({v})")
                }
                (Request::Rank(v), Response::Rank(r)) => {
                    assert_eq!(r, naive_rank(&tree, v), "rank({v})")
                }
                other => panic!("mismatched response kind: {other:?}"),
            }
        }
        let report = forest.last_report();
        assert_eq!(report.sessions, 1, "one mutation-free session");
        assert_eq!(report.lca_queries, 40);
        assert!(report.grid.energy > 0);
        assert!(report.ranking.energy > 0);
        assert!(report.pram.is_none());
    }

    #[test]
    fn inserts_split_sessions_and_are_visible() {
        let mut rng = StdRng::seed_from_u64(2);
        let tree = generators::random_binary(60, &mut rng);
        let mut forest = SpatialForest::new(&tree);
        let mut batch = crate::QueryBatch::new();
        batch
            .subtree_sum(tree.root())
            .insert_leaf_weighted(5, 10)
            .subtree_sum(tree.root())
            .lca(60, 5) // the new leaf: its LCA with its parent is the parent
            .rank(60);
        let responses = forest.execute(batch.requests(), &mut rng).to_vec();
        assert_eq!(responses[0], Response::SubtreeSum(60));
        assert_eq!(responses[1], Response::InsertedLeaf(60));
        assert_eq!(responses[2], Response::SubtreeSum(70), "weight 10 landed");
        assert_eq!(responses[3], Response::Lca(5));
        let report = forest.last_report();
        assert_eq!(report.sessions, 2);
        assert_eq!(report.inserts, 1);
        assert_eq!(forest.n(), 61);
        // The post-insert queries saw the rebuilt light-first layout.
        let expected_rank = naive_rank(forest.tree(), 60);
        assert_eq!(responses[4], Response::Rank(expected_rank));
    }

    #[test]
    fn repeated_batches_reuse_engines_and_charge_identically() {
        let mut rng = StdRng::seed_from_u64(3);
        let tree = generators::preferential_attachment(300, &mut rng);
        let mut forest = SpatialForest::new(&tree);
        let mut batch = crate::QueryBatch::new();
        for i in 0..50u32 {
            batch.lca(i, (i * 13 + 1) % 300);
            batch.subtree_sum((i * 3) % 300);
            batch.rank((i * 17) % 300);
        }
        let first: Vec<Response> = forest
            .execute(batch.requests(), &mut StdRng::seed_from_u64(9))
            .to_vec();
        let first_report = forest.last_report();
        let builds_after_first = forest.pool().stats().builds;
        for _ in 0..3 {
            let again = forest.execute(batch.requests(), &mut StdRng::seed_from_u64(9));
            assert_eq!(again, &first[..], "answers drifted across reuse");
            assert_eq!(forest.last_report(), first_report, "charges drifted");
        }
        assert_eq!(
            forest.pool().stats().builds,
            builds_after_first,
            "reuse must not rebuild engines"
        );
        assert_eq!(forest.pool().stats().rebinds, 0, "no mutations, no rebinds");
    }

    #[test]
    fn crossover_mode_prices_the_pram_shadow() {
        let mut rng = StdRng::seed_from_u64(4);
        let tree = generators::random_binary(256, &mut rng);
        let mut forest = SpatialForest::with_options(
            &tree,
            ForestOptions {
                crossover: true,
                ..ForestOptions::default()
            },
        );
        let mut batch = crate::QueryBatch::new();
        batch.subtree_sum(0).subtree_sum(100);
        forest.execute(batch.requests(), &mut rng);
        let report = forest.last_report();
        let pram = report.pram.expect("crossover mode prices the shadow");
        assert!(
            pram.energy > report.grid.energy,
            "PRAM simulation must cost more: {} vs {}",
            pram.energy,
            report.grid.energy
        );
    }

    #[test]
    fn single_vertex_forest() {
        let tree = Tree::from_parents(0, vec![spatial_tree::NIL]);
        let mut forest = SpatialForest::new(&tree);
        let mut rng = StdRng::seed_from_u64(5);
        let mut batch = crate::QueryBatch::new();
        batch
            .lca(0, 0)
            .subtree_sum(0)
            .rank(0)
            .insert_leaf(0)
            .rank(1);
        let responses = forest.execute(batch.requests(), &mut rng).to_vec();
        assert_eq!(responses[0], Response::Lca(0));
        assert_eq!(responses[1], Response::SubtreeSum(1));
        assert_eq!(responses[2], Response::Rank(0));
        assert_eq!(responses[3], Response::InsertedLeaf(1));
        assert_eq!(responses[4], Response::Rank(1));
    }

    #[test]
    fn set_weight_changes_sums_without_rebinding() {
        let tree = generators::path(10);
        let mut forest = SpatialForest::new(&tree);
        let mut rng = StdRng::seed_from_u64(6);
        let mut batch = crate::QueryBatch::new();
        batch.subtree_sum(0);
        assert_eq!(
            forest.execute(batch.requests(), &mut rng)[0],
            Response::SubtreeSum(10)
        );
        forest.set_weight(9, 100);
        assert_eq!(
            forest.execute(batch.requests(), &mut rng)[0],
            Response::SubtreeSum(109)
        );
        assert_eq!(forest.pool().stats().rebinds, 0);
    }

    #[test]
    fn snapshot_and_journal_recovery_is_charge_identical() {
        let dir = std::env::temp_dir();
        let snap_path = dir.join(format!("spatial-session-snap-{}", std::process::id()));
        let journal_path = dir.join(format!("spatial-session-journal-{}", std::process::id()));

        let mut rng = StdRng::seed_from_u64(11);
        let tree = generators::uniform_random(80, &mut rng);
        let opts = ForestOptions::default();
        let mut live = SpatialForest::with_options(&tree, opts);

        // Mutate pre-snapshot so the captured state is mid-lifetime.
        let mut warm = crate::QueryBatch::new();
        for i in 0..30u32 {
            warm.insert_leaf(i % 80).lca(i, (i * 7 + 1) % 80);
        }
        live.execute(warm.requests(), &mut StdRng::seed_from_u64(12));
        live.set_weight(3, 41);

        // Checkpoint, then journal a continuation that crosses inserts,
        // weight changes, and a query-triggered rebuild.
        live.snapshot_to(&snap_path, 7).expect("snapshot");
        live.attach_journal(JournalWriter::create(&journal_path).expect("journal"));
        let mut cont = crate::QueryBatch::new();
        for i in 0..40u32 {
            cont.insert_leaf(i % live.n()).subtree_sum(i % 50).rank(i);
        }
        live.execute(cont.requests(), &mut StdRng::seed_from_u64(13));
        live.set_weight(9, 1000);
        live.detach_journal();

        let mut recovered =
            SpatialForest::recover_from(&snap_path, &journal_path, opts).expect("recover");
        assert_eq!(recovered.n(), live.n());
        assert_eq!(recovered.dynamic_stats(), live.dynamic_stats());
        assert_eq!(recovered.layout().order(), live.layout().order());

        // The future is pinned: identical answers AND identical charges.
        let mut probe = crate::QueryBatch::new();
        for i in 0..25u32 {
            probe
                .lca(i, (i * 13 + 2) % 100)
                .subtree_sum(i * 4)
                .rank(i * 3);
        }
        let a = live
            .execute(probe.requests(), &mut StdRng::seed_from_u64(14))
            .to_vec();
        let b = recovered
            .execute(probe.requests(), &mut StdRng::seed_from_u64(14))
            .to_vec();
        assert_eq!(a, b, "answers diverged after recovery");
        assert_eq!(
            live.last_report(),
            recovered.last_report(),
            "charges diverged after recovery"
        );

        // The snapshot preserved the caller's tag verbatim.
        let snap = spatial_store::ForestSnapshot::read_from(&snap_path).expect("reread");
        assert_eq!(snap.tag, 7);

        std::fs::remove_file(&snap_path).ok();
        std::fs::remove_file(&journal_path).ok();
    }

    #[test]
    fn charged_layout_build_reports_phases() {
        let mut rng = StdRng::seed_from_u64(7);
        let tree = generators::uniform_random(300, &mut rng);
        let mut forest = SpatialForest::new(&tree);
        let report = forest.charged_layout_build(&mut rng);
        assert!(report.total().energy > 0);
        assert!(forest.pool().has_layout_engine());
        // A second call reuses the pooled engine.
        let builds = forest.pool().stats().builds;
        forest.charged_layout_build(&mut rng);
        assert_eq!(forest.pool().stats().builds, builds);
    }
}
