//! The session layer: one tree, one layout, a pool of retained
//! engines, and a scheduler that serves **mixed query batches** with
//! zero steady-state allocation.
//!
//! Every engine crate below this one answers a single workload
//! (batched LCA, treefix sums, list ranking, layout construction) and
//! leaves composition to the caller: build the layout, build each
//! engine, wire the machines, repeat per run. [`SpatialForest`] is
//! that composition, retained. It owns the tree and its (dynamic,
//! incrementally maintained) light-first layout, lazily builds the
//! engines it needs, and executes a mixed stream of [`Request`]s —
//! LCA pairs, subtree sums, Euler-tour ranks, dynamic leaf inserts —
//! in *charge-batched sessions*: all queries of one kind between two
//! tree mutations share a single charged engine run, so a batch of a
//! thousand LCA queries pays for one §VI-C pass, not a thousand.
//!
//! The engines follow the uniform `reset/reserve/run` lifecycle of
//! [`spatial_model::EngineLifecycle`]: the pool grows them
//! (amortized) when the tree grows, rebinds them when the tree
//! mutates, and reuses their flat buffers forever after — the
//! steady-state query path performs **zero heap allocation**
//! (counting-allocator test `tests/alloc_free.rs`) and is pinned
//! against naive sequential answers and fresh-engine charge reports by
//! the workspace-wide differential fuzz harness
//! (`tests/integration_fuzz.rs` at the repository root).
//!
//! ```
//! use rand::SeedableRng;
//! use spatial_session::{QueryBatch, Request, Response, SpatialForest};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let tree = spatial_tree::generators::uniform_random(500, &mut rng);
//! let mut forest = SpatialForest::new(&tree);
//!
//! let mut batch = QueryBatch::new();
//! batch.lca(3, 77).subtree_sum(0).insert_leaf(5).rank(42);
//! let responses = forest.execute(batch.requests(), &mut rng);
//! assert_eq!(responses.len(), 4);
//! assert_eq!(responses[1], Response::SubtreeSum(500)); // unit weights
//! println!("{:?}", forest.last_report()); // per-batch energy/depth
//! ```
//!
//! See `DESIGN.md` (next to this crate's manifest) for the pool
//! lifecycle, the scheduling rules, and the charge-batching argument.

mod batch;
mod forest;
mod pool;

pub use batch::{QueryBatch, Request, Response, SessionReport};
pub use forest::{CheckpointStats, ForestBacking, ForestOptions, SpatialForest};
pub use pool::{EnginePool, PoolStats};
