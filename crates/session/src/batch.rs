//! Requests, responses, and the per-execute cost report.

use spatial_model::CostReport;
use spatial_tree::NodeId;

/// One request in a mixed stream. Queries are answered against the
/// tree as of their position in the stream: a query after an
/// [`Request::InsertLeaf`] sees the inserted leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Lowest common ancestor of two vertices (batched §VI-C engine).
    Lca(NodeId, NodeId),
    /// Sum of the per-vertex weights over the vertex's subtree
    /// (bottom-up treefix, §V).
    SubtreeSum(NodeId),
    /// Position of the vertex's down dart on the light-first Euler
    /// tour (0 for the root), via the Theorem 5 list-ranking engine.
    Rank(NodeId),
    /// Append a new leaf under `parent` with the given subtree-sum
    /// weight; answers with the new vertex id. O(1) curve placement
    /// through the dynamic layout (§VII), amortized rebuilds.
    InsertLeaf {
        /// Parent of the new leaf (any existing vertex, including one
        /// inserted earlier in the same stream).
        parent: NodeId,
        /// Weight of the new leaf in subtree sums.
        weight: u64,
    },
}

/// The answer to the same-index [`Request`] of the executed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Lca`].
    Lca(NodeId),
    /// Answer to [`Request::SubtreeSum`].
    SubtreeSum(u64),
    /// Answer to [`Request::Rank`].
    Rank(u64),
    /// Answer to [`Request::InsertLeaf`]: the new vertex id.
    InsertedLeaf(NodeId),
}

/// A reusable request buffer with a fluent builder API; `clear` and
/// refill it across batches to keep the caller allocation-free too.
#[derive(Debug, Default, Clone)]
pub struct QueryBatch {
    requests: Vec<Request>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `cap` requests.
    pub fn with_capacity(cap: usize) -> Self {
        QueryBatch {
            requests: Vec::with_capacity(cap),
        }
    }

    /// Removes all requests, keeping the buffer.
    pub fn clear(&mut self) {
        self.requests.clear();
    }

    /// Number of buffered requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Appends an LCA query.
    pub fn lca(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        self.requests.push(Request::Lca(a, b));
        self
    }

    /// Appends a subtree-sum query.
    pub fn subtree_sum(&mut self, v: NodeId) -> &mut Self {
        self.requests.push(Request::SubtreeSum(v));
        self
    }

    /// Appends an Euler-tour rank query.
    pub fn rank(&mut self, v: NodeId) -> &mut Self {
        self.requests.push(Request::Rank(v));
        self
    }

    /// Appends a unit-weight leaf insert.
    pub fn insert_leaf(&mut self, parent: NodeId) -> &mut Self {
        self.insert_leaf_weighted(parent, 1)
    }

    /// Appends a weighted leaf insert.
    pub fn insert_leaf_weighted(&mut self, parent: NodeId, weight: u64) -> &mut Self {
        self.requests.push(Request::InsertLeaf { parent, weight });
        self
    }

    /// The buffered stream, in order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }
}

/// Machine charges and scheduling counters of one
/// [`crate::SpatialForest::execute`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionReport {
    /// Charges on the grid machine (LCA + treefix sessions), summed
    /// across the execute's sessions (depth adds: sessions chain).
    pub grid: CostReport,
    /// Charges on the 2-slots-per-vertex dart machine (ranking
    /// sessions).
    pub ranking: CostReport,
    /// Charges of the PRAM-baseline shadow runs (crossover mode only):
    /// the same subtree sums priced on the §I-C PRAM simulation.
    pub pram: Option<CostReport>,
    /// Out-of-core paging charges (mapped backing with a paging config
    /// only): cold-page faults priced as long-distance messages. `None`
    /// on owned backings — every other field of a paged run stays
    /// bit-identical to its fully-resident twin.
    pub paging: Option<spatial_model::PagingReport>,
    /// Charge-batched sessions flushed (mutation boundaries + 1,
    /// counting only sessions that ran at least one engine).
    pub sessions: u32,
    /// LCA queries answered.
    pub lca_queries: u32,
    /// Subtree-sum queries answered.
    pub sum_queries: u32,
    /// Rank queries answered.
    pub rank_queries: u32,
    /// Leaves inserted.
    pub inserts: u32,
}
