//! Cost reports: snapshots of the machine's meters with helpers for
//! normalized "is this O(f(n))?" experiment tables.

use std::ops::{Add, Sub};

/// A snapshot of the machine's cost meters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostReport {
    /// Total energy (distance-weighted communication volume).
    pub energy: u64,
    /// Total number of messages.
    pub messages: u64,
    /// Total local compute operations charged via `tick`.
    pub work: u64,
    /// Depth: longest chain of dependent messages.
    pub depth: u64,
}

impl CostReport {
    /// Energy normalized by `n` — constant for linear-energy algorithms.
    pub fn energy_per_n(&self, n: u64) -> f64 {
        self.energy as f64 / n.max(1) as f64
    }

    /// Energy normalized by `n·log₂ n` — constant for the treefix/LCA
    /// bounds of the paper.
    pub fn energy_per_n_log_n(&self, n: u64) -> f64 {
        let n = n.max(2) as f64;
        self.energy as f64 / (n * n.log2())
    }

    /// Energy normalized by `n^{3/2}` — constant for sorting/permutation
    /// and the PRAM-simulation baseline.
    pub fn energy_per_n_three_halves(&self, n: u64) -> f64 {
        let n = n.max(1) as f64;
        self.energy as f64 / n.powf(1.5)
    }

    /// Depth normalized by `log₂ n`.
    pub fn depth_per_log_n(&self, n: u64) -> f64 {
        let n = n.max(2) as f64;
        self.depth as f64 / n.log2()
    }

    /// Depth normalized by `log₂² n`.
    pub fn depth_per_log2_n(&self, n: u64) -> f64 {
        let n = n.max(2) as f64;
        self.depth as f64 / (n.log2() * n.log2())
    }

    /// Mean distance travelled per message.
    pub fn mean_message_distance(&self) -> f64 {
        self.energy as f64 / self.messages.max(1) as f64
    }
}

impl Sub for CostReport {
    type Output = CostReport;

    fn sub(self, rhs: CostReport) -> CostReport {
        CostReport {
            energy: self.energy - rhs.energy,
            messages: self.messages - rhs.messages,
            work: self.work - rhs.work,
            // Depth is a high-water mark, not additive; the difference is
            // the depth added since the snapshot.
            depth: self.depth.saturating_sub(rhs.depth),
        }
    }
}

impl Add for CostReport {
    type Output = CostReport;

    fn add(self, rhs: CostReport) -> CostReport {
        CostReport {
            energy: self.energy + rhs.energy,
            messages: self.messages + rhs.messages,
            work: self.work + rhs.work,
            depth: self.depth + rhs.depth,
        }
    }
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "energy={} messages={} work={} depth={}",
            self.energy, self.messages, self.work, self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(energy: u64, messages: u64, work: u64, depth: u64) -> CostReport {
        CostReport {
            energy,
            messages,
            work,
            depth,
        }
    }

    #[test]
    fn normalizations() {
        let c = r(1024, 100, 0, 20);
        assert_eq!(c.energy_per_n(1024), 1.0);
        assert!((c.energy_per_n_log_n(1024) - 1024.0 / (1024.0 * 10.0)).abs() < 1e-12);
        assert!((c.energy_per_n_three_halves(1024) - 1024.0 / 32768.0).abs() < 1e-12);
        assert_eq!(c.depth_per_log_n(1024), 2.0);
        assert_eq!(c.depth_per_log2_n(1024), 0.2);
        assert_eq!(c.mean_message_distance(), 10.24);
    }

    #[test]
    fn zero_guards() {
        let c = r(10, 0, 0, 4);
        assert_eq!(c.mean_message_distance(), 10.0);
        assert_eq!(c.energy_per_n(0), 10.0);
        assert!(c.depth_per_log_n(0) > 0.0);
    }

    #[test]
    fn sub_and_add() {
        let a = r(100, 10, 5, 8);
        let b = r(40, 4, 2, 3);
        assert_eq!(a - b, r(60, 6, 3, 5));
        assert_eq!(a + b, r(140, 14, 7, 11));
        // Depth saturates instead of underflowing.
        assert_eq!((b - b).depth, 0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            r(1, 2, 3, 4).to_string(),
            "energy=1 messages=2 work=3 depth=4"
        );
    }
}
