//! Model-charged paging: out-of-core residency priced in the machine's
//! own currency.
//!
//! When a forest serves queries out of an mmap-backed snapshot, the
//! slabs live "outside" the grid — a cold page touched mid-session is
//! a fetch from far-away storage. The spatial model already has a unit
//! for exactly that: a *long-distance message*. [`PagedMachine`] tracks
//! which pages of the mapped file are resident under a configurable
//! budget and charges every fault as one message whose energy is the
//! grid diameter `max(2·(side − 1), 1)` — the farthest two processors
//! can be — plus one unit of work and one unit of depth. Evictions are
//! free: the mapping is read-only, there is nothing to write back.
//!
//! Residency uses plain LRU. LRU is a stack algorithm (the resident
//! set under budget `k` is always a subset of the set under `k + 1`),
//! so fault counts are monotone non-increasing in the budget — a
//! property the differential suite pins (`tests/integration_ooc.rs`)
//! and the charge tables rely on to stay interpretable.
//!
//! Charges mirror the [`crate::LocalCharge`] discipline: they
//! accumulate session-locally and are published in one batch by
//! [`PagedMachine::commit_session`], so a paging run's `SessionReport`
//! differs from its fully-resident twin *only* by the explicit
//! [`PagingReport`] rows — every other meter stays bit-identical.

use crate::CostReport;
use std::ops::Add;

/// Residency configuration for a paged (mmap-backed) forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagingConfig {
    /// Bytes per page — the granularity of residency and fault
    /// charging.
    pub page_bytes: u64,
    /// How many pages may be resident at once; touching a cold page
    /// beyond this budget evicts the least-recently-used one.
    pub resident_pages: usize,
}

impl Default for PagingConfig {
    fn default() -> Self {
        PagingConfig {
            page_bytes: 4096,
            resident_pages: 64,
        }
    }
}

/// The paging meters: what out-of-core residency cost, in model terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PagingReport {
    /// The model charge for all faults (energy = diameter per fault).
    pub charge: CostReport,
    /// Cold-page touches (each is one long-distance message).
    pub faults: u64,
    /// Pages dropped to stay within the resident budget (free).
    pub evictions: u64,
}

impl Add for PagingReport {
    type Output = PagingReport;

    fn add(self, rhs: PagingReport) -> PagingReport {
        PagingReport {
            charge: self.charge + rhs.charge,
            faults: self.faults + rhs.faults,
            evictions: self.evictions + rhs.evictions,
        }
    }
}

/// An LRU residency tracker that prices cold-page touches as
/// long-distance messages. See the module docs for the model argument.
#[derive(Debug)]
pub struct PagedMachine {
    page_bytes: u64,
    budget: usize,
    /// Resident page ids, LRU at the front, MRU at the back. The
    /// budget is small by design (it *is* the out-of-core premise), so
    /// a linear scan beats a map.
    lru: Vec<u64>,
    session: PagingReport,
    lifetime: PagingReport,
}

impl PagedMachine {
    /// A paged machine with an empty resident set.
    pub fn new(cfg: PagingConfig) -> Self {
        let budget = cfg.resident_pages.max(1);
        PagedMachine {
            page_bytes: cfg.page_bytes.max(1),
            budget,
            lru: Vec::with_capacity(budget),
            session: PagingReport::default(),
            lifetime: PagingReport::default(),
        }
    }

    /// Touches the byte range `[start, start + len)` of the mapped
    /// file. Every page in the range that is not resident faults:
    /// `fault_energy` (the grid diameter at touch time), one message,
    /// one work op, one depth step; the LRU page is evicted when the
    /// budget is full. Warm pages just move to MRU, free of charge.
    pub fn touch_range(&mut self, start: u64, len: u64, fault_energy: u64) {
        if len == 0 {
            return;
        }
        let first = start / self.page_bytes;
        let last = (start + len - 1) / self.page_bytes;
        for page in first..=last {
            self.touch_page(page, fault_energy);
        }
    }

    fn touch_page(&mut self, page: u64, fault_energy: u64) {
        if let Some(pos) = self.lru.iter().position(|&p| p == page) {
            // Warm hit: refresh recency only.
            self.lru.remove(pos);
            self.lru.push(page);
            return;
        }
        if self.lru.len() == self.budget {
            self.lru.remove(0);
            self.session.evictions += 1;
        }
        self.lru.push(page);
        self.session.faults += 1;
        self.session.charge.energy += fault_energy;
        self.session.charge.messages += 1;
        self.session.charge.work += 1;
        self.session.charge.depth += 1;
    }

    /// Publishes the session's accumulated paging charges in one batch
    /// (mirroring the `LocalCharge` discipline), folds them into the
    /// lifetime meters, and resets the session meters. The resident
    /// set survives — residency is a property of the process, not the
    /// session.
    pub fn commit_session(&mut self) -> PagingReport {
        let session = self.session;
        self.lifetime = self.lifetime + session;
        self.session = PagingReport::default();
        session
    }

    /// Everything charged since construction, committed or not.
    pub fn lifetime(&self) -> PagingReport {
        self.lifetime + self.session
    }

    /// Currently resident page count.
    pub fn resident_pages(&self) -> usize {
        self.lru.len()
    }

    /// The configured residency budget in pages.
    pub fn budget(&self) -> usize {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch_all(m: &mut PagedMachine, bytes: u64) {
        m.touch_range(0, bytes, 10);
    }

    #[test]
    fn cold_touches_fault_warm_touches_do_not() {
        let mut m = PagedMachine::new(PagingConfig {
            page_bytes: 64,
            resident_pages: 8,
        });
        m.touch_range(0, 256, 10); // pages 0..4, all cold
        assert_eq!(m.lifetime().faults, 4);
        assert_eq!(m.lifetime().charge.energy, 40);
        assert_eq!(m.lifetime().charge.messages, 4);
        assert_eq!(m.lifetime().charge.depth, 4);
        m.touch_range(0, 256, 10); // all warm now
        assert_eq!(m.lifetime().faults, 4);
        assert_eq!(m.lifetime().evictions, 0);
        assert_eq!(m.resident_pages(), 4);
    }

    #[test]
    fn range_boundaries_round_to_pages() {
        let mut m = PagedMachine::new(PagingConfig {
            page_bytes: 64,
            resident_pages: 8,
        });
        m.touch_range(63, 2, 1); // straddles pages 0 and 1
        assert_eq!(m.lifetime().faults, 2);
        m.touch_range(128, 0, 1); // empty touch is free
        assert_eq!(m.lifetime().faults, 2);
    }

    #[test]
    fn eviction_is_lru_and_free() {
        let mut m = PagedMachine::new(PagingConfig {
            page_bytes: 64,
            resident_pages: 2,
        });
        m.touch_range(0, 64, 5); // page 0
        m.touch_range(64, 64, 5); // page 1
        m.touch_range(0, 64, 5); // warm: page 0 becomes MRU
        m.touch_range(128, 64, 5); // page 2 evicts page 1 (LRU)
        assert_eq!(m.lifetime().evictions, 1);
        m.touch_range(0, 64, 5); // page 0 must still be resident
        assert_eq!(m.lifetime().faults, 3);
        m.touch_range(64, 64, 5); // page 1 was evicted: faults again
        assert_eq!(m.lifetime().faults, 4);
        // Eviction costs nothing beyond the faults themselves.
        assert_eq!(m.lifetime().charge.energy, 4 * 5);
    }

    #[test]
    fn commit_batches_like_local_charge() {
        let mut m = PagedMachine::new(PagingConfig {
            page_bytes: 64,
            resident_pages: 4,
        });
        touch_all(&mut m, 3 * 64);
        let first = m.commit_session();
        assert_eq!(first.faults, 3);
        // A second commit with no touches is empty…
        assert_eq!(m.commit_session(), PagingReport::default());
        // …but the resident set carried over: re-touching is free.
        touch_all(&mut m, 3 * 64);
        assert_eq!(m.commit_session(), PagingReport::default());
        assert_eq!(m.lifetime().faults, 3);
    }

    /// LRU is a stack algorithm: faults on the same touch trace are
    /// monotone non-increasing in the resident budget.
    #[test]
    fn faults_are_monotone_in_budget() {
        // A trace with reuse at several distances.
        let trace: Vec<u64> = [0u64, 1, 2, 3, 0, 1, 4, 5, 0, 2, 6, 1, 0, 3]
            .iter()
            .map(|p| p * 64)
            .collect();
        let mut prev = u64::MAX;
        for budget in 1..=8 {
            let mut m = PagedMachine::new(PagingConfig {
                page_bytes: 64,
                resident_pages: budget,
            });
            for &off in &trace {
                m.touch_range(off, 64, 1);
            }
            let faults = m.lifetime().faults;
            assert!(
                faults <= prev,
                "budget {budget}: {faults} faults > {prev} at smaller budget"
            );
            prev = faults;
        }
    }
}
