//! The spatial computer model (Gianinazzi et al.) as an instrumented
//! machine.
//!
//! The model considers a `√n × √n` grid of processors with constant-sized
//! local memory. In each round a processor sends/receives a constant
//! number of messages and performs a constant number of operations. The
//! two cost measures are:
//!
//! - **Energy** — the sum over all messages of the Manhattan distance
//!   between sender and receiver (distance-weighted communication
//!   volume).
//! - **Depth** — the longest chain of dependent messages.
//!
//! This crate implements the model *literally* as an accounting machine:
//! every algorithm in the workspace routes each message through
//! [`Machine::send`] (or one of the batched variants), which charges the
//! exact Manhattan distance and maintains a per-processor dependency
//! clock. The depth of the computation is the maximum clock value, which
//! equals the longest chain of dependent messages by construction.
//!
//! The paper's foundational collectives (§II-A) — broadcast, reduce,
//! all-reduce, parallel prefix sum with `O(n)` energy and `O(log n)`
//! depth, and sorting with `Θ(n^{3/2})` energy and poly-log depth — are
//! implemented in [`collectives`] as real message patterns over the grid
//! and charged message-by-message (bulk-charged per network stage for the
//! sorting network, which would otherwise dominate simulation time).

pub mod collectives;
pub mod engine;
pub mod machine;
pub mod paging;
pub mod report;

pub use engine::EngineLifecycle;
pub use machine::{
    LocalCharge, LocalChargeScratch, Machine, MachineBuilder, RoundCharger, Slot, TraceEvent,
};
pub use paging::{PagedMachine, PagingConfig, PagingReport};
pub use report::CostReport;

// Re-export the geometry the machine is built on so downstream crates can
// use one canonical `GridPoint`.
pub use spatial_sfc::{manhattan, CurveKind, GridPoint};
