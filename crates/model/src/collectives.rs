//! Foundational spatial collectives (§II-A of the paper).
//!
//! All collectives are implemented as *real* message patterns over slot
//! ranges and charged through the [`Machine`]:
//!
//! - [`range_broadcast`] / [`range_reduce`] / [`all_reduce`]: balanced
//!   binary trees over a contiguous slot range. On an energy-bound order
//!   the recursion `T(s) = 2T(s/2) + O(√s)` gives `O(s)` energy and
//!   `O(log s)` depth — this is also exactly the virtual broadcast tree
//!   of Lemma 13 used by the LCA algorithm.
//! - [`exclusive_prefix_sum`]: a Blelloch scan (up-sweep + down-sweep),
//!   `O(n)` energy and `O(log n)` depth on a distance-bound curve.
//! - [`bitonic_sort_by_key`]: a bitonic sorting network. Each stage moves
//!   records between slots `i` and `i ⊕ stride`; summing the
//!   distance-weighted volume over all `O(log² n)` stages gives
//!   `Θ(n^{3/2})` energy — matching the `Ω(n^{3/2})` lower bound for a
//!   global permutation on a `√n × √n` grid — and poly-logarithmic depth.
//!
//! Senders are ticked between consecutive messages so that "one message
//! per round" chains show up in the depth meter.

#[cfg(test)]
use crate::machine::LocalChargeScratch;
use crate::machine::{LocalCharge, Machine, Slot};
use rayon::prelude::*;

/// Minimum range size before the tree recursions stop forking rayon
/// tasks; below this the recursion runs sequentially.
const PAR_THRESHOLD: u32 = 1 << 12;

/// Broadcasts a value held at slot `lo` to every slot in `[lo, hi)` along
/// a balanced binary tree (Lemma 13's virtual broadcast tree).
///
/// Charges `O(hi - lo)` energy and `O(log (hi - lo))` depth on an
/// energy-bound slot order.
pub fn range_broadcast(m: &Machine, lo: Slot, hi: Slot) {
    assert!(lo < hi && hi <= m.n_slots(), "invalid range [{lo}, {hi})");
    broadcast_rec(m, lo, hi);
}

fn broadcast_rec(m: &Machine, lo: Slot, hi: Slot) {
    if hi - lo <= 1 {
        return;
    }
    let mid = lo + (hi - lo) / 2;
    m.send(lo, mid);
    m.tick(lo); // one message per round: the next send from lo is later
    if hi - lo > PAR_THRESHOLD {
        rayon::join(|| broadcast_rec(m, lo, mid), || broadcast_rec(m, mid, hi));
    } else {
        broadcast_rec(m, lo, mid);
        broadcast_rec(m, mid, hi);
    }
}

/// [`range_broadcast`] charged through a [`LocalCharge`] session:
/// issues the identical message tree (same energy, messages, work, and
/// clock evolution), with plain arithmetic instead of atomics. The hot
/// path of the batched-LCA layer broadcasts (Lemma 13).
pub fn range_broadcast_local(lc: &mut LocalCharge, lo: Slot, hi: Slot) {
    assert!(lo < hi && hi <= lc.n_slots(), "invalid range [{lo}, {hi})");
    broadcast_rec_local(lc, lo, hi);
}

fn broadcast_rec_local(lc: &mut LocalCharge, lo: Slot, hi: Slot) {
    if hi - lo <= 1 {
        return;
    }
    let mid = lo + (hi - lo) / 2;
    lc.send(lo, mid);
    lc.tick(lo);
    broadcast_rec_local(lc, lo, mid);
    broadcast_rec_local(lc, mid, hi);
}

/// Charges the message tree of a [`range_reduce`] through a
/// [`LocalCharge`] session (the values themselves are not carried —
/// callers that only need the synchronization pattern, like
/// [`barrier_local`], use this).
pub fn range_reduce_charge_local(lc: &mut LocalCharge, lo: Slot, hi: Slot) {
    assert!(lo < hi && hi <= lc.n_slots(), "invalid range [{lo}, {hi})");
    reduce_rec_local(lc, lo, hi);
}

fn reduce_rec_local(lc: &mut LocalCharge, lo: Slot, hi: Slot) {
    if hi - lo <= 1 {
        return;
    }
    let mid = lo + (hi - lo) / 2;
    reduce_rec_local(lc, lo, mid);
    reduce_rec_local(lc, mid, hi);
    lc.send(mid, lo);
    lc.tick(lo);
}

/// [`barrier`] charged through a [`LocalCharge`] session: the identical
/// unit-token all-reduce (reduce tree + broadcast tree over the whole
/// machine) followed by the floor lift.
pub fn barrier_local(lc: &mut LocalCharge) {
    let n = lc.n_slots();
    if n == 0 {
        return;
    }
    if n > 1 {
        range_reduce_charge_local(lc, 0, n);
        range_broadcast_local(lc, 0, n);
    }
    lc.advance_all(0);
}

/// Reduces the `values` of slots `[lo, hi)` into slot `lo` with the
/// associative operator `op`, along the mirror of the broadcast tree.
///
/// Returns the combined value. Charges `O(hi - lo)` energy and
/// `O(log (hi - lo))` depth on an energy-bound slot order.
pub fn range_reduce<T, F>(m: &Machine, lo: Slot, hi: Slot, values: &[T], op: &F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    assert!(lo < hi && hi <= m.n_slots(), "invalid range [{lo}, {hi})");
    assert_eq!(
        values.len() as u32,
        hi - lo,
        "need one value per slot in the range"
    );
    reduce_rec(m, lo, hi, values, op)
}

fn reduce_rec<T, F>(m: &Machine, lo: Slot, hi: Slot, values: &[T], op: &F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    if hi - lo <= 1 {
        return values[0];
    }
    let mid = lo + (hi - lo) / 2;
    let split = (mid - lo) as usize;
    let (lv, rv) = values.split_at(split);
    let (left, right) = if hi - lo > PAR_THRESHOLD {
        rayon::join(
            || reduce_rec(m, lo, mid, lv, op),
            || reduce_rec(m, mid, hi, rv, op),
        )
    } else {
        (
            reduce_rec(m, lo, mid, lv, op),
            reduce_rec(m, mid, hi, rv, op),
        )
    };
    m.send(mid, lo);
    m.tick(lo);
    op(left, right)
}

/// Reduce followed by broadcast over the whole machine: every slot learns
/// the combined value. This is the paper's synchronization barrier
/// (`O(n)` energy, `O(log n)` depth).
pub fn all_reduce<T, F>(m: &Machine, values: &[T], op: &F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let n = m.n_slots();
    let total = range_reduce(m, 0, n, values, op);
    range_broadcast(m, 0, n);
    total
}

/// A synchronization barrier: an all-reduce carrying a unit token.
/// Afterwards every slot's clock is at least the pre-barrier depth.
pub fn barrier(m: &Machine) {
    let n = m.n_slots();
    if n == 0 {
        return;
    }
    if n > 1 {
        let units = vec![(); n as usize];
        all_reduce(m, &units, &|_, _| ());
    }
    // The broadcast only advances clocks of receivers; lift everyone to
    // the post-barrier frontier.
    m.advance_all(0);
}

/// Exclusive prefix sum (Blelloch scan) of `values` over slots
/// `0..values.len()` with associative `op` and `identity`.
///
/// Returns the exclusive scan; charges `O(n)` energy and `O(log n)` depth
/// on a distance-bound curve. Stages are charged in bulk (energy summed
/// in parallel, one synchronous depth step per stage).
pub fn exclusive_prefix_sum<T, F>(m: &Machine, values: &[T], identity: T, op: &F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let n = values.len();
    assert!(n as u32 <= m.n_slots(), "more values than slots");
    if n == 0 {
        return Vec::new();
    }
    let padded = n.next_power_of_two();
    let mut a: Vec<T> = Vec::with_capacity(padded);
    a.extend_from_slice(values);
    a.resize(padded, identity);

    // Up-sweep.
    let mut stride = 1usize;
    while stride < padded {
        let step = stride * 2;
        let energy: u64 = (step - 1..padded)
            .into_par_iter()
            .step_by(step)
            .filter(|&i| i < n && i >= stride && i - stride < n)
            .map(|i| m.dist((i - stride) as Slot, i as Slot))
            .sum();
        let msgs = ((padded / step) as u64).min(n as u64);
        m.charge_bulk(energy, msgs, msgs);
        for i in (step - 1..padded).step_by(step) {
            a[i] = op(a[i - stride], a[i]);
        }
        m.advance_all(1);
        stride = step;
    }

    // Down-sweep.
    a[padded - 1] = identity;
    stride = padded / 2;
    while stride >= 1 {
        let step = stride * 2;
        let energy: u64 = (step - 1..padded)
            .into_par_iter()
            .step_by(step)
            .filter(|&i| i < n && i >= stride && i - stride < n)
            .map(|i| m.dist((i - stride) as Slot, i as Slot))
            .sum();
        let msgs = ((padded / step) as u64).min(n as u64);
        m.charge_bulk(energy, msgs, msgs);
        for i in (step - 1..padded).step_by(step) {
            let left = a[i - stride];
            a[i - stride] = a[i];
            a[i] = op(left, a[i]);
        }
        m.advance_all(1);
        stride /= 2;
    }

    a.truncate(n);
    a
}

/// Inclusive prefix sum: the exclusive scan combined with each element.
pub fn inclusive_prefix_sum<T, F>(m: &Machine, values: &[T], identity: T, op: &F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let ex = exclusive_prefix_sum(m, values, identity, op);
    ex.into_iter()
        .zip(values)
        .map(|(acc, &v)| op(acc, v))
        .collect()
}

/// Sorts `(key, value)` records held one-per-slot with a bitonic sorting
/// network, charging every compare-exchange stage.
///
/// Returns the records in sorted order. Energy is `Θ(n^{3/2})` on any
/// square-grid placement — matching the global-permutation lower bound —
/// and depth is `O(log² n)`. Records are padded with virtual `+∞`
/// sentinels to the next power of two; exchanges that involve a sentinel
/// are free (the pad region is known to every processor and never holds
/// data).
pub fn bitonic_sort_by_key<K, V>(m: &Machine, records: &mut Vec<(K, V)>)
where
    K: Ord + Copy + Send + Sync,
    V: Copy + Send + Sync,
{
    let n = records.len();
    assert!(n as u32 <= m.n_slots(), "more records than slots");
    if n <= 1 {
        return;
    }
    let padded = n.next_power_of_two();
    let mut a: Vec<Option<(K, V)>> = records.drain(..).map(Some).collect();
    a.resize(padded, None);

    let mut k = 2usize;
    while k <= padded {
        let mut j = k / 2;
        while j >= 1 {
            // Charge the stage: every real-real pair exchanges two
            // messages (one each way) at the slots' Manhattan distance.
            let energy: u64 = (0..padded)
                .into_par_iter()
                .map(|i| {
                    let l = i ^ j;
                    if l > i && l < n && i < n {
                        2 * m.dist(i as Slot, l as Slot)
                    } else {
                        0
                    }
                })
                .sum();
            let pairs = (0..padded)
                .filter(|&i| {
                    let l = i ^ j;
                    l > i && l < n
                })
                .count() as u64;
            m.charge_bulk(energy, 2 * pairs, pairs);
            m.advance_all(1);

            for i in 0..padded {
                let l = i ^ j;
                if l > i {
                    let ascending = i & k == 0;
                    let swap = match (&a[i], &a[l]) {
                        (Some((ki, _)), Some((kl, _))) => {
                            if ascending {
                                ki > kl
                            } else {
                                ki < kl
                            }
                        }
                        // None acts as +∞.
                        (None, Some(_)) => ascending,
                        (Some(_), None) => !ascending,
                        (None, None) => false,
                    };
                    if swap {
                        a.swap(i, l);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }

    records.extend(a.into_iter().flatten());
    debug_assert_eq!(records.len(), n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CurveKind;
    use rand::prelude::*;

    fn hilbert_machine(n: u32) -> Machine {
        Machine::on_curve(CurveKind::Hilbert, n)
    }

    #[test]
    fn broadcast_linear_energy_log_depth() {
        for log_n in [8u32, 10, 12] {
            let n = 1u32 << log_n;
            let m = hilbert_machine(n);
            range_broadcast(&m, 0, n);
            let r = m.report();
            assert_eq!(
                r.messages,
                n as u64 - 1,
                "tree broadcast sends n-1 messages"
            );
            assert!(
                r.energy_per_n(n as u64) < 8.0,
                "n={n}: broadcast energy/n = {} not O(1)",
                r.energy_per_n(n as u64)
            );
            assert!(
                r.depth as f64 <= 3.0 * log_n as f64 + 4.0,
                "n={n}: broadcast depth {} not O(log n)",
                r.depth
            );
        }
    }

    #[test]
    fn broadcast_range_offsets() {
        let m = hilbert_machine(256);
        range_broadcast(&m, 17, 93);
        let r = m.report();
        assert_eq!(r.messages, (93 - 17 - 1) as u64);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn broadcast_rejects_empty_range() {
        let m = hilbert_machine(8);
        range_broadcast(&m, 5, 5);
    }

    #[test]
    fn reduce_combines_and_charges() {
        let n = 1u32 << 10;
        let m = hilbert_machine(n);
        let values: Vec<u64> = (0..n as u64).collect();
        let total = range_reduce(&m, 0, n, &values, &|a, b| a + b);
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
        let r = m.report();
        assert_eq!(r.messages, n as u64 - 1);
        assert!(r.energy_per_n(n as u64) < 8.0);
        assert!(r.depth <= 3 * 10 + 4);
    }

    #[test]
    fn reduce_with_max_operator() {
        let m = hilbert_machine(64);
        let values: Vec<i64> = vec![3, -7, 42, 0, 9, 41, -1, 42, 5, 6, 7, 8, 1, 2, 3, 4];
        let top = range_reduce(&m, 0, 16, &values, &|a, b| a.max(b));
        assert_eq!(top, 42);
    }

    #[test]
    fn all_reduce_reaches_everyone() {
        let n = 128u32;
        let m = hilbert_machine(n);
        let values = vec![1u64; n as usize];
        let total = all_reduce(&m, &values, &|a, b| a + b);
        assert_eq!(total, n as u64);
        // Every slot participated: roughly 2(n-1) messages.
        assert_eq!(m.report().messages, 2 * (n as u64 - 1));
    }

    #[test]
    fn barrier_lifts_all_clocks() {
        let m = hilbert_machine(64);
        m.send(0, 1);
        m.send(1, 2);
        let before = m.depth();
        barrier(&m);
        for s in 0..64 {
            assert!(m.clock(s) >= before, "slot {s} below pre-barrier depth");
        }
    }

    #[test]
    fn prefix_sum_matches_sequential() {
        let n = 1000usize;
        let mut rng = StdRng::seed_from_u64(7);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100)).collect();
        let m = hilbert_machine(n as u32);
        let got = exclusive_prefix_sum(&m, &values, 0, &|a, b| a + b);
        let mut acc = 0u64;
        for i in 0..n {
            assert_eq!(got[i], acc, "exclusive prefix mismatch at {i}");
            acc += values[i];
        }
        let r = m.report();
        assert!(
            r.energy_per_n(n as u64) < 16.0,
            "prefix sum energy/n = {}",
            r.energy_per_n(n as u64)
        );
        assert!(r.depth as f64 <= 2.0 * (n as f64).log2() + 6.0);
    }

    #[test]
    fn inclusive_prefix_sum_shifts() {
        let m = hilbert_machine(8);
        let values = vec![1u64, 2, 3, 4];
        assert_eq!(
            inclusive_prefix_sum(&m, &values, 0, &|a, b| a + b),
            vec![1, 3, 6, 10]
        );
    }

    #[test]
    fn prefix_sum_empty_and_single() {
        let m = hilbert_machine(4);
        let empty: Vec<u64> = vec![];
        assert!(exclusive_prefix_sum(&m, &empty, 0, &|a, b| a + b).is_empty());
        assert_eq!(exclusive_prefix_sum(&m, &[5u64], 0, &|a, b| a + b), vec![0]);
    }

    #[test]
    fn bitonic_sorts_correctly() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 5, 64, 100, 1000] {
            let m = hilbert_machine(n as u32);
            let mut records: Vec<(u64, u32)> = (0..n)
                .map(|i| (rng.gen_range(0..1_000_000), i as u32))
                .collect();
            let mut expect = records.clone();
            expect.sort_by_key(|r| r.0);
            bitonic_sort_by_key(&m, &mut records);
            let got_keys: Vec<u64> = records.iter().map(|r| r.0).collect();
            let want_keys: Vec<u64> = expect.iter().map(|r| r.0).collect();
            assert_eq!(got_keys, want_keys, "n={n}");
        }
    }

    #[test]
    fn bitonic_energy_scales_three_halves() {
        // Energy/n^{3/2} should be roughly flat across sizes (within 2x),
        // while energy/n grows — the Θ(n^{3/2}) signature.
        let mut ratios = Vec::new();
        for log_n in [8u32, 10, 12] {
            let n = 1usize << log_n;
            let m = hilbert_machine(n as u32);
            let mut recs: Vec<(u64, u32)> = (0..n)
                .map(|i| (((i * 2654435761) % 1_000_003) as u64, i as u32))
                .collect();
            bitonic_sort_by_key(&m, &mut recs);
            ratios.push(m.report().energy_per_n_three_halves(n as u64));
        }
        let (min, max) = (
            ratios.iter().cloned().fold(f64::MAX, f64::min),
            ratios.iter().cloned().fold(0.0, f64::max),
        );
        assert!(
            max / min < 3.0,
            "energy/n^1.5 should be near-constant, got {ratios:?}"
        );
    }

    #[test]
    fn bitonic_depth_polylog() {
        let n = 1usize << 10;
        let m = hilbert_machine(n as u32);
        let mut recs: Vec<(u64, u32)> = (0..n).map(|i| ((n - i) as u64, i as u32)).collect();
        bitonic_sort_by_key(&m, &mut recs);
        let stages = (10 * 11) / 2; // log n (log n + 1) / 2
        assert_eq!(m.report().depth, stages as u64);
    }

    #[test]
    fn local_collectives_match_atomic_charging() {
        // A layer of disjoint range broadcasts followed by a barrier,
        // charged atomically vs through a LocalCharge session, must
        // yield identical reports and clocks — the batched-LCA step-4
        // equivalence the differential suite relies on.
        let ranges: &[(u32, u32)] = &[(0, 37), (37, 40), (64, 128), (200, 201)];
        let atomic = hilbert_machine(256);
        atomic.send(3, 190); // pre-session state
        for &(lo, hi) in ranges {
            if hi - lo >= 2 {
                range_broadcast(&atomic, lo, hi);
            }
        }
        barrier(&atomic);

        let local = hilbert_machine(256);
        local.send(3, 190);
        let mut scratch = LocalChargeScratch::new();
        let mut lc = local.begin_local_charge(&mut scratch);
        for &(lo, hi) in ranges {
            if hi - lo >= 2 {
                range_broadcast_local(&mut lc, lo, hi);
            }
        }
        barrier_local(&mut lc);
        lc.commit();

        assert_eq!(atomic.report(), local.report());
        for s in 0..256 {
            assert_eq!(atomic.clock(s), local.clock(s), "slot {s}");
        }
    }

    #[test]
    fn barrier_local_single_slot() {
        let atomic = hilbert_machine(1);
        barrier(&atomic);
        let local = hilbert_machine(1);
        let mut scratch = LocalChargeScratch::new();
        let mut lc = local.begin_local_charge(&mut scratch);
        barrier_local(&mut lc);
        lc.commit();
        assert_eq!(atomic.report(), local.report());
    }

    #[test]
    fn prefix_sum_on_zorder_machine() {
        // The collectives also run on Z-order placements.
        let n = 512usize;
        let m = Machine::on_curve(CurveKind::ZOrder, n as u32);
        let values = vec![1u64; n];
        let got = exclusive_prefix_sum(&m, &values, 0, &|a, b| a + b);
        assert_eq!(got[n - 1], (n - 1) as u64);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::CurveKind;
    use proptest::prelude::*;

    proptest! {
        /// Prefix sums agree with the sequential scan for any inputs.
        #[test]
        fn prop_prefix_sum_correct(values in proptest::collection::vec(0u64..1000, 1..200)) {
            let m = Machine::on_curve(CurveKind::Hilbert, values.len() as u32);
            let got = exclusive_prefix_sum(&m, &values, 0, &|a, b| a + b);
            let mut acc = 0u64;
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(got[i], acc);
                acc += v;
            }
        }

        /// Bitonic sort sorts any record set and preserves multiplicity.
        #[test]
        fn prop_bitonic_sorts(keys in proptest::collection::vec(0u64..100, 1..150)) {
            let m = Machine::on_curve(CurveKind::Hilbert, keys.len() as u32);
            let mut records: Vec<(u64, u32)> =
                keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
            bitonic_sort_by_key(&m, &mut records);
            let got: Vec<u64> = records.iter().map(|r| r.0).collect();
            let mut want = keys.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        /// Reduce computes the fold regardless of range position.
        #[test]
        fn prop_reduce_any_range(
            values in proptest::collection::vec(0u64..1000, 2..100),
            offset in 0u32..50,
        ) {
            let n = values.len() as u32;
            let m = Machine::on_curve(CurveKind::Hilbert, n + offset);
            let total = range_reduce(&m, offset, offset + n, &values, &|a, b| a + b);
            prop_assert_eq!(total, values.iter().sum::<u64>());
        }
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::machine::MachineBuilder;
    use crate::CurveKind;

    /// White-box check: a range broadcast over [0, 8) sends exactly the
    /// balanced-binary-tree edges, in dependency order.
    #[test]
    fn broadcast_trace_is_balanced_tree() {
        let m = MachineBuilder::on_curve(CurveKind::Hilbert, 8)
            .trace(true)
            .build();
        range_broadcast(&m, 0, 8);
        let trace = m.take_trace();
        let edges: Vec<(u32, u32)> = trace.iter().map(|e| (e.from, e.to)).collect();
        // Root splits [0,8) at 4; then [0,4) at 2, [4,8) at 6; etc.
        assert_eq!(edges.len(), 7);
        assert!(edges.contains(&(0, 4)));
        assert!(edges.contains(&(0, 2)));
        assert!(edges.contains(&(4, 6)));
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(2, 3)));
        assert!(edges.contains(&(4, 5)));
        assert!(edges.contains(&(6, 7)));
        // Every receiver's depth is after its sender's receive.
        for e in &trace {
            let sender_receipt = trace
                .iter()
                .find(|f| f.to == e.from)
                .map(|f| f.depth_after)
                .unwrap_or(0);
            assert!(
                e.depth_after > sender_receipt,
                "{} → {} violates dependency order",
                e.from,
                e.to
            );
        }
    }

    /// The reduce trace is the mirror: same edges, reversed direction.
    #[test]
    fn reduce_trace_mirrors_broadcast() {
        let m = MachineBuilder::on_curve(CurveKind::Hilbert, 8)
            .trace(true)
            .build();
        let values = vec![1u64; 8];
        range_reduce(&m, 0, 8, &values, &|a, b| a + b);
        let up: std::collections::HashSet<(u32, u32)> =
            m.take_trace().iter().map(|e| (e.to, e.from)).collect();

        let m2 = MachineBuilder::on_curve(CurveKind::Hilbert, 8)
            .trace(true)
            .build();
        range_broadcast(&m2, 0, 8);
        let down: std::collections::HashSet<(u32, u32)> =
            m2.take_trace().iter().map(|e| (e.from, e.to)).collect();
        assert_eq!(up, down);
    }
}
