//! The uniform engine lifecycle of the session layer.
//!
//! Every retained engine in the workspace (`ContractionEngine`,
//! `RankingEngine`, `LcaEngine`, `LayoutEngine`, `PramEngine`) separates
//! a capacity — how many vertices/elements its flat buffers can serve
//! without reallocating — from the binding — which concrete tree/list it
//! currently answers for. The session layer's engine pool drives all of
//! them through this one trait: grow with [`EngineLifecycle::reserve`]
//! (amortized doubling, the only allocating step), invalidate with
//! [`EngineLifecycle::reset`], and run through the engine's own
//! `bind`/`run`-shaped entry points, which are allocation-free once the
//! capacity suffices.

/// The `reserve`/`reset` half of the uniform `reset/reserve/run` engine
/// lifecycle. The `run` half stays on each engine's inherent API (the
/// signatures differ — queries, values, machines), but capacity
/// management is identical everywhere, which is what lets one pool hold
/// heterogeneous engines.
pub trait EngineLifecycle {
    /// Number of vertices (or list elements) the retained buffers can
    /// currently serve without reallocating.
    fn capacity(&self) -> usize;

    /// Grows the retained buffers so that bindings of up to `cap`
    /// vertices are allocation-free. Never shrinks; a no-op when the
    /// capacity already suffices.
    fn reserve(&mut self, cap: usize);

    /// Clears per-run results and the current binding, keeping every
    /// retained buffer (and therefore the capacity).
    fn reset(&mut self);
}
