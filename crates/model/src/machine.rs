//! The instrumented grid machine: energy meter and dependency clocks.

use crate::report::CostReport;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use spatial_sfc::{manhattan, AnyCurve, Curve, CurveKind, GridPoint};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A processor slot: the position of a processor in the machine's linear
/// (curve) order. Algorithms place one tree vertex per slot, matching the
/// paper's "number of vertices = number of processors" convention.
pub type Slot = u32;

/// One recorded message, available when tracing is enabled via
/// [`MachineBuilder::trace`]. Used by the figure-regeneration examples
/// and by fine-grained tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sending slot.
    pub from: Slot,
    /// Receiving slot.
    pub to: Slot,
    /// Energy charged (Manhattan distance between the slots).
    pub energy: u64,
    /// Dependency clock of the receiver after the message.
    pub depth_after: u32,
}

/// Builder for [`Machine`], allowing optional message tracing.
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    points: Vec<GridPoint>,
    side: u32,
    trace: bool,
}

impl MachineBuilder {
    /// Machine whose slots `0..n` lie on the given space-filling curve.
    pub fn on_curve(kind: CurveKind, n_slots: u32) -> Self {
        let curve: AnyCurve = kind.for_capacity(n_slots as u64);
        // Batch transform: one parallel pass instead of n scalar calls.
        let mut points = vec![GridPoint::default(); n_slots as usize];
        curve.point_range_batch(0, &mut points);
        MachineBuilder {
            points,
            side: curve.side(),
            trace: false,
        }
    }

    /// Machine with an explicit slot → grid-point placement.
    pub fn from_points(points: Vec<GridPoint>) -> Self {
        let side = points.iter().map(|p| p.x.max(p.y) + 1).max().unwrap_or(0);
        MachineBuilder {
            points,
            side,
            trace: false,
        }
    }

    /// Enables per-message tracing (adds a lock per message; use only for
    /// small instances and figure generation).
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Finalizes the machine.
    pub fn build(self) -> Machine {
        let n = self.points.len();
        Machine {
            points: self.points,
            side: self.side,
            energy: CachePadded::new(AtomicU64::new(0)),
            messages: CachePadded::new(AtomicU64::new(0)),
            work: CachePadded::new(AtomicU64::new(0)),
            clocks: (0..n).map(|_| AtomicU32::new(0)).collect(),
            max_clock: CachePadded::new(AtomicU32::new(0)),
            floor: CachePadded::new(AtomicU32::new(0)),
            staging: Mutex::new(Vec::new()),
            trace: self.trace.then(|| Mutex::new(Vec::new())),
        }
    }
}

/// The spatial computer: a set of processor slots with fixed grid
/// positions, an energy/message/work meter, and per-slot dependency
/// clocks whose maximum is the depth of the computation so far.
///
/// All charging methods take `&self` and are thread-safe, so algorithms
/// can charge from inside rayon parallel iterators.
pub struct Machine {
    points: Vec<GridPoint>,
    side: u32,
    energy: CachePadded<AtomicU64>,
    messages: CachePadded<AtomicU64>,
    work: CachePadded<AtomicU64>,
    clocks: Vec<AtomicU32>,
    max_clock: CachePadded<AtomicU32>,
    /// Lower bound applied to every clock; lets collectives synchronize
    /// all processors in O(1) accounting work instead of O(n).
    floor: CachePadded<AtomicU32>,
    /// Reusable staging buffer for [`Machine::round`]; grows to the
    /// largest round seen and is never shrunk, so steady-state rounds
    /// are allocation-free.
    staging: Mutex<Vec<(Slot, u32, u64)>>,
    trace: Option<Mutex<Vec<TraceEvent>>>,
}

impl Machine {
    /// Machine whose slots `0..n` lie on the given space-filling curve.
    pub fn on_curve(kind: CurveKind, n_slots: u32) -> Self {
        MachineBuilder::on_curve(kind, n_slots).build()
    }

    /// Machine with an explicit slot → grid-point placement.
    pub fn from_points(points: Vec<GridPoint>) -> Self {
        MachineBuilder::from_points(points).build()
    }

    /// Number of processor slots.
    pub fn n_slots(&self) -> u32 {
        self.points.len() as u32
    }

    /// Side length of the (smallest covering) grid.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Grid position of a slot.
    #[inline]
    pub fn point_of(&self, s: Slot) -> GridPoint {
        self.points[s as usize]
    }

    /// Manhattan distance between two slots — the energy one message
    /// between them would cost.
    #[inline]
    pub fn dist(&self, a: Slot, b: Slot) -> u64 {
        manhattan(self.point_of(a), self.point_of(b))
    }

    /// Effective dependency clock of a slot (raw clock clamped from below
    /// by the collective floor).
    #[inline]
    pub fn clock(&self, s: Slot) -> u32 {
        self.clocks[s as usize]
            .load(Ordering::Relaxed)
            .max(self.floor.load(Ordering::Relaxed))
    }

    /// Sends one message from `from` to `to`: charges the Manhattan
    /// distance as energy and advances the receiver's clock to
    /// `max(clock(to), clock(from) + 1)`.
    ///
    /// Sequential chains of `send` calls therefore accumulate depth
    /// exactly as the model's message-dependency DAG prescribes.
    pub fn send(&self, from: Slot, to: Slot) {
        let e = self.dist(from, to);
        self.energy.fetch_add(e, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
        let after = self.clock(from) + 1;
        let prev = self.clocks[to as usize].fetch_max(after, Ordering::Relaxed);
        let depth_after = prev.max(after).max(self.floor.load(Ordering::Relaxed));
        self.max_clock.fetch_max(depth_after, Ordering::Relaxed);
        if let Some(trace) = &self.trace {
            trace.lock().push(TraceEvent {
                from,
                to,
                energy: e,
                depth_after,
            });
        }
    }

    /// Sends a batch of *simultaneous* messages (one communication round):
    /// all sender clocks are read before any receiver clock is advanced,
    /// so messages inside one batch never chain on each other.
    pub fn round(&self, msgs: &[(Slot, Slot)]) {
        // Phase 1: read sender clocks and distances, staged in a
        // reusable buffer (no allocation once its capacity has grown to
        // the largest round seen; allocation-free algorithms charge
        // through a LocalCharge session with pre-sized scratch instead).
        let mut staged = self.staging.lock();
        staged.clear();
        staged.extend(
            msgs.iter()
                .map(|&(f, t)| (t, self.clock(f) + 1, self.dist(f, t))),
        );
        // Phase 2: apply.
        let mut e_sum = 0u64;
        for &(t, after, e) in staged.iter() {
            e_sum += e;
            let prev = self.clocks[t as usize].fetch_max(after, Ordering::Relaxed);
            self.max_clock.fetch_max(prev.max(after), Ordering::Relaxed);
        }
        self.energy.fetch_add(e_sum, Ordering::Relaxed);
        self.messages
            .fetch_add(msgs.len() as u64, Ordering::Relaxed);
        if let Some(trace) = &self.trace {
            let mut tr = trace.lock();
            for (i, &(t, after, e)) in staged.iter().enumerate() {
                tr.push(TraceEvent {
                    from: msgs[i].0,
                    to: t,
                    energy: e,
                    depth_after: after,
                });
            }
        }
    }

    /// Charges one local compute step at a slot (work + a clock tick).
    /// The model allows a constant number of operations between messages;
    /// algorithms call this where the constant factor matters for the
    /// work term.
    pub fn tick(&self, s: Slot) {
        self.work.fetch_add(1, Ordering::Relaxed);
        let c = self.clock(s) + 1;
        self.clocks[s as usize].fetch_max(c, Ordering::Relaxed);
        self.max_clock.fetch_max(c, Ordering::Relaxed);
    }

    /// Bulk-charges energy and message count without touching clocks.
    /// Used by network-stage accounting (e.g. one bitonic stage) where
    /// per-message clock updates would be redundant with a following
    /// [`Machine::advance_all`].
    pub fn charge_bulk(&self, energy: u64, messages: u64, work: u64) {
        self.energy.fetch_add(energy, Ordering::Relaxed);
        self.messages.fetch_add(messages, Ordering::Relaxed);
        self.work.fetch_add(work, Ordering::Relaxed);
    }

    /// Advances every slot's clock to `current max depth + delta` in O(1)
    /// accounting work: a *synchronous* step in which all processors
    /// participate (e.g. one stage of a sorting network or a barrier).
    pub fn advance_all(&self, delta: u32) {
        let target = self.depth() + delta;
        self.floor.fetch_max(target, Ordering::Relaxed);
        self.max_clock.fetch_max(target, Ordering::Relaxed);
    }

    /// Current depth: the longest chain of dependent messages charged so
    /// far (maximum over effective clocks).
    pub fn depth(&self) -> u32 {
        self.max_clock
            .load(Ordering::Relaxed)
            .max(self.floor.load(Ordering::Relaxed))
    }

    /// Total energy charged so far.
    pub fn energy(&self) -> u64 {
        self.energy.load(Ordering::Relaxed)
    }

    /// Total number of messages charged so far.
    pub fn message_count(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total local compute work charged so far.
    pub fn work(&self) -> u64 {
        self.work.load(Ordering::Relaxed)
    }

    /// Snapshot of all counters.
    pub fn report(&self) -> CostReport {
        CostReport {
            energy: self.energy(),
            messages: self.message_count(),
            work: self.work(),
            depth: self.depth() as u64,
        }
    }

    /// Sums the Manhattan distances of a batch of slot pairs — the
    /// energy those messages would cost — without charging anything.
    /// The batched charge hook used by the list-ranking engine: one
    /// pass over the pairs, then a single [`Machine::charge_bulk`].
    pub fn dist_sum<I: IntoIterator<Item = (Slot, Slot)>>(&self, pairs: I) -> u64 {
        pairs.into_iter().map(|(a, b)| self.dist(a, b)).sum()
    }

    /// Charges one synchronous pointer round (the §IV list-ranking
    /// pattern): bulk energy + message count, one unit of work per
    /// message, and a single global clock step.
    pub fn charge_pointer_round(&self, energy: u64, messages: u64) {
        self.charge_bulk(energy, messages, messages);
        self.advance_all(1);
    }

    /// Begins a **local charging session**: a single-threaded,
    /// non-atomic view of the per-slot dependency clocks that charges
    /// messages with plain arithmetic and commits the identical totals
    /// (energy, messages, work, clocks, depth) back to the machine in
    /// one batch via [`LocalCharge::commit`].
    ///
    /// This is the hot-path charge hook for phases that issue millions
    /// of fine-grained messages (the treefix COMPACT rounds, the
    /// batched-LCA layer broadcasts and barriers): the accounting math
    /// is exactly [`Machine::send`] / [`Machine::tick`] /
    /// [`Machine::round`] / [`Machine::advance_all`], minus the
    /// atomics. The caller must not charge the machine through other
    /// paths while a session is open — the session owns the clock
    /// state.
    ///
    /// On traced machines ([`MachineBuilder::trace`]) the session
    /// records the same per-message [`TraceEvent`]s as the atomic path
    /// (at the atomic path's cost — tracing is for small instances).
    ///
    /// `scratch` is a reusable buffer; after it has grown to `n_slots`
    /// clocks (and the largest round batch) once, opening and running
    /// an untraced session performs no heap allocation.
    pub fn begin_local_charge<'s>(
        &self,
        scratch: &'s mut LocalChargeScratch,
    ) -> LocalCharge<'_, 's> {
        scratch.clocks.clear();
        let floor = self.floor.load(Ordering::Relaxed);
        scratch.clocks.extend(
            self.clocks
                .iter()
                .map(|c| c.load(Ordering::Relaxed).max(floor)),
        );
        let max = self.depth();
        LocalCharge {
            machine: self,
            clocks: &mut scratch.clocks,
            staging: &mut scratch.staging,
            floor,
            max,
            energy: 0,
            messages: 0,
            work: 0,
        }
    }

    /// Drains and returns the recorded trace (empty when tracing is off).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        match &self.trace {
            Some(tr) => std::mem::take(&mut *tr.lock()),
            None => Vec::new(),
        }
    }

    /// Resets all counters and clocks (placement is kept).
    pub fn reset(&mut self) {
        self.energy = CachePadded::new(AtomicU64::new(0));
        self.messages = CachePadded::new(AtomicU64::new(0));
        self.work = CachePadded::new(AtomicU64::new(0));
        for c in &self.clocks {
            c.store(0, Ordering::Relaxed);
        }
        self.max_clock = CachePadded::new(AtomicU32::new(0));
        self.floor = CachePadded::new(AtomicU32::new(0));
        if let Some(tr) = &self.trace {
            tr.lock().clear();
        }
    }
}

/// Reusable buffers for a [`LocalCharge`] session. One instance serves
/// any number of sessions; once grown (or pre-sized with
/// [`LocalChargeScratch::with_capacity`]), sessions never allocate.
#[derive(Debug, Default)]
pub struct LocalChargeScratch {
    /// Per-slot clock snapshot.
    clocks: Vec<u32>,
    /// Two-phase staging for [`LocalCharge::round`].
    staging: Vec<(Slot, u32, u64)>,
}

impl LocalChargeScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch pre-sized for machines of up to `slots` slots and round
    /// batches of up to `round` messages, so no session ever allocates.
    pub fn with_capacity(slots: usize, round: usize) -> Self {
        LocalChargeScratch {
            clocks: Vec::with_capacity(slots),
            staging: Vec::with_capacity(round),
        }
    }

    /// Grows the scratch to the [`LocalChargeScratch::with_capacity`]
    /// shape (never shrinks) — the engine-pool `reserve` hook, so a
    /// capacity growth keeps later sessions allocation-free.
    pub fn reserve(&mut self, slots: usize, round: usize) {
        self.clocks.reserve(slots.saturating_sub(self.clocks.len()));
        self.staging
            .reserve(round.saturating_sub(self.staging.len()));
    }
}

/// A sink for communication-round charges: either the [`Machine`]
/// itself (atomic, thread-safe) or a [`LocalCharge`] session
/// (single-threaded, batch-committed). Lets charging helpers — the CSR
/// relay walkers, the broadcast schedules, the list-ranking engine, the
/// layout builder — serve both paths with the identical message
/// pattern.
pub trait RoundCharger {
    /// Charges one batch of simultaneous messages ([`Machine::round`]
    /// semantics: no intra-batch chaining).
    fn charge_round(&mut self, msgs: &[(Slot, Slot)]);

    /// Advances every slot's clock ([`Machine::advance_all`]
    /// semantics).
    fn charge_advance_all(&mut self, delta: u32);

    /// Charges one message ([`Machine::send`] semantics: the receiver's
    /// clock chains on the sender's).
    fn charge_send(&mut self, from: Slot, to: Slot);

    /// Bulk-charges energy, messages, and work without touching clocks
    /// ([`Machine::charge_bulk`] semantics).
    fn charge_bulk(&mut self, energy: u64, messages: u64, work: u64);

    /// Charges one synchronous pointer round
    /// ([`Machine::charge_pointer_round`] semantics): bulk counters plus
    /// one global clock step.
    fn charge_pointer_round(&mut self, energy: u64, messages: u64) {
        self.charge_bulk(energy, messages, messages);
        self.charge_advance_all(1);
    }
}

impl RoundCharger for &Machine {
    fn charge_round(&mut self, msgs: &[(Slot, Slot)]) {
        Machine::round(self, msgs);
    }

    fn charge_advance_all(&mut self, delta: u32) {
        Machine::advance_all(self, delta);
    }

    fn charge_send(&mut self, from: Slot, to: Slot) {
        Machine::send(self, from, to);
    }

    fn charge_bulk(&mut self, energy: u64, messages: u64, work: u64) {
        Machine::charge_bulk(self, energy, messages, work);
    }
}

impl RoundCharger for LocalCharge<'_, '_> {
    fn charge_round(&mut self, msgs: &[(Slot, Slot)]) {
        LocalCharge::round(self, msgs);
    }

    fn charge_advance_all(&mut self, delta: u32) {
        LocalCharge::advance_all(self, delta);
    }

    fn charge_send(&mut self, from: Slot, to: Slot) {
        LocalCharge::send(self, from, to);
    }

    fn charge_bulk(&mut self, energy: u64, messages: u64, work: u64) {
        LocalCharge::charge_bulk(self, energy, messages, work);
    }
}

/// A local (non-atomic) charging session over a [`Machine`], created by
/// [`Machine::begin_local_charge`]. Mirrors the machine's accounting
/// semantics exactly; totals apply on [`LocalCharge::commit`].
pub struct LocalCharge<'m, 's> {
    machine: &'m Machine,
    /// Effective per-slot clocks (already clamped by the floor at
    /// snapshot time).
    clocks: &'s mut Vec<u32>,
    /// Staging for the two-phase round application.
    staging: &'s mut Vec<(Slot, u32, u64)>,
    floor: u32,
    max: u32,
    energy: u64,
    messages: u64,
    work: u64,
}

impl LocalCharge<'_, '_> {
    /// Number of slots of the underlying machine.
    #[inline]
    pub fn n_slots(&self) -> u32 {
        self.machine.n_slots()
    }

    /// Effective dependency clock of a slot inside the session.
    #[inline]
    pub fn clock(&self, s: Slot) -> u32 {
        self.clocks[s as usize].max(self.floor)
    }

    /// Local mirror of [`Machine::send`].
    #[inline]
    pub fn send(&mut self, from: Slot, to: Slot) {
        let e = self.machine.dist(from, to);
        self.energy += e;
        self.messages += 1;
        let after = self.clock(from) + 1;
        let c = &mut self.clocks[to as usize];
        if after > *c {
            *c = after;
        }
        let eff = (*c).max(self.floor);
        if eff > self.max {
            self.max = eff;
        }
        if let Some(trace) = &self.machine.trace {
            trace.lock().push(TraceEvent {
                from,
                to,
                energy: e,
                depth_after: eff,
            });
        }
    }

    /// Local mirror of [`Machine::tick`].
    #[inline]
    pub fn tick(&mut self, s: Slot) {
        self.work += 1;
        let c = self.clock(s) + 1;
        self.clocks[s as usize] = c;
        if c > self.max {
            self.max = c;
        }
    }

    /// Local mirror of [`Machine::charge_bulk`]: counters only, no
    /// clock movement.
    #[inline]
    pub fn charge_bulk(&mut self, energy: u64, messages: u64, work: u64) {
        self.energy += energy;
        self.messages += messages;
        self.work += work;
    }

    /// Local mirror of [`Machine::round`]: all sender clocks are read
    /// before any receiver clock is advanced, so messages inside one
    /// batch never chain on each other.
    pub fn round(&mut self, msgs: &[(Slot, Slot)]) {
        self.staging.clear();
        let floor = self.floor;
        self.staging.extend(msgs.iter().map(|&(f, t)| {
            (
                t,
                self.clocks[f as usize].max(floor) + 1,
                self.machine.dist(f, t),
            )
        }));
        let mut e_sum = 0u64;
        for &(t, after, e) in self.staging.iter() {
            e_sum += e;
            let c = &mut self.clocks[t as usize];
            if after > *c {
                *c = after;
            }
            let eff = (*c).max(floor);
            if eff > self.max {
                self.max = eff;
            }
        }
        self.energy += e_sum;
        self.messages += msgs.len() as u64;
        if let Some(trace) = &self.machine.trace {
            let mut tr = trace.lock();
            for (i, &(t, after, e)) in self.staging.iter().enumerate() {
                tr.push(TraceEvent {
                    from: msgs[i].0,
                    to: t,
                    energy: e,
                    depth_after: after,
                });
            }
        }
    }

    /// Local mirror of [`Machine::advance_all`].
    pub fn advance_all(&mut self, delta: u32) {
        let target = self.depth() + delta;
        if target > self.floor {
            self.floor = target;
        }
        if target > self.max {
            self.max = target;
        }
    }

    /// Current depth as seen by the session.
    pub fn depth(&self) -> u32 {
        self.max.max(self.floor)
    }

    /// Applies the session's totals to the machine: counter sums, the
    /// per-slot clocks (monotone merge), the floor, and the depth.
    pub fn commit(self) {
        let m = self.machine;
        m.energy.fetch_add(self.energy, Ordering::Relaxed);
        m.messages.fetch_add(self.messages, Ordering::Relaxed);
        m.work.fetch_add(self.work, Ordering::Relaxed);
        for (shared, &local) in m.clocks.iter().zip(self.clocks.iter()) {
            shared.fetch_max(local, Ordering::Relaxed);
        }
        m.floor.fetch_max(self.floor, Ordering::Relaxed);
        m.max_clock.fetch_max(self.max, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("n_slots", &self.n_slots())
            .field("side", &self.side)
            .field("report", &self.report())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_machine(n: u32) -> Machine {
        // n slots in a single row: dist(i, j) = |i - j|.
        Machine::from_points((0..n).map(|i| GridPoint::new(i, 0)).collect())
    }

    #[test]
    fn send_charges_manhattan_energy() {
        let m = line_machine(10);
        m.send(0, 9);
        assert_eq!(m.energy(), 9);
        assert_eq!(m.message_count(), 1);
        assert_eq!(m.depth(), 1);
    }

    #[test]
    fn chained_sends_accumulate_depth() {
        let m = line_machine(4);
        m.send(0, 1);
        m.send(1, 2);
        m.send(2, 3);
        assert_eq!(m.depth(), 3);
        assert_eq!(m.energy(), 3);
        assert_eq!(m.clock(3), 3);
        assert_eq!(m.clock(0), 0);
    }

    #[test]
    fn independent_sends_do_not_chain() {
        let m = line_machine(6);
        m.send(0, 1);
        m.send(2, 3);
        m.send(4, 5);
        assert_eq!(m.depth(), 1, "disjoint messages are parallel");
    }

    #[test]
    fn round_is_simultaneous() {
        let m = line_machine(4);
        // A relay chain submitted as one round must not chain.
        m.round(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(m.depth(), 1);
        // Submitted as sequential sends it chains.
        let m2 = line_machine(4);
        m2.send(0, 1);
        m2.send(1, 2);
        m2.send(2, 3);
        assert_eq!(m2.depth(), 3);
    }

    #[test]
    fn fan_in_takes_max_of_senders() {
        let m = line_machine(5);
        m.send(0, 1); // clock(1) = 1
        m.send(1, 2); // clock(2) = 2
        m.send(3, 2); // clock(2) stays 2 (fan-in: max(2, 0+1))
        assert_eq!(m.clock(2), 2);
        m.send(2, 4);
        assert_eq!(m.clock(4), 3);
    }

    #[test]
    fn advance_all_lifts_every_clock() {
        let m = line_machine(4);
        m.send(0, 1);
        m.send(1, 2); // depth 2
        m.advance_all(3); // synchronous phase of 3 steps
        assert_eq!(m.depth(), 5);
        for s in 0..4 {
            assert_eq!(m.clock(s), 5, "slot {s} must be lifted by the floor");
        }
        // A message after the barrier builds on the lifted clock.
        m.send(3, 0);
        assert_eq!(m.depth(), 6);
    }

    #[test]
    fn charge_bulk_counts_but_keeps_depth() {
        let m = line_machine(4);
        m.charge_bulk(100, 7, 3);
        assert_eq!(m.energy(), 100);
        assert_eq!(m.message_count(), 7);
        assert_eq!(m.work(), 3);
        assert_eq!(m.depth(), 0);
    }

    #[test]
    fn tick_advances_one_clock() {
        let m = line_machine(2);
        m.tick(0);
        m.tick(0);
        assert_eq!(m.clock(0), 2);
        assert_eq!(m.clock(1), 0);
        assert_eq!(m.work(), 2);
    }

    #[test]
    fn on_curve_placement_matches_curve() {
        use spatial_sfc::{Curve as _, CurveKind};
        let m = Machine::on_curve(CurveKind::Hilbert, 16);
        let c = CurveKind::Hilbert.for_capacity(16);
        for s in 0..16u32 {
            assert_eq!(m.point_of(s), c.point(s as u64));
        }
        assert_eq!(m.side(), 4);
    }

    #[test]
    fn trace_records_messages() {
        let m = MachineBuilder::on_curve(CurveKind::Hilbert, 8)
            .trace(true)
            .build();
        m.send(0, 3);
        m.send(3, 5);
        let tr = m.take_trace();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0].from, 0);
        assert_eq!(tr[0].to, 3);
        assert_eq!(tr[1].depth_after, 2);
        assert!(m.take_trace().is_empty(), "trace is drained");
    }

    #[test]
    fn reset_clears_counters() {
        let mut m = line_machine(4);
        m.send(0, 3);
        m.advance_all(2);
        m.reset();
        assert_eq!(m.report(), CostReport::default());
        assert_eq!(m.clock(3), 0);
    }

    #[test]
    fn report_snapshot_diff() {
        let m = line_machine(8);
        m.send(0, 7);
        let before = m.report();
        m.send(7, 0);
        let delta = m.report() - before;
        assert_eq!(delta.energy, 7);
        assert_eq!(delta.messages, 1);
    }

    #[test]
    fn local_charge_matches_atomic_sends() {
        // The same send/tick/advance sequence through a LocalCharge
        // session must produce the identical report and clock state.
        let ops: &[(u32, u32)] = &[(0, 5), (5, 2), (2, 7), (1, 2), (7, 0)];
        let atomic = line_machine(10);
        for &(a, b) in ops {
            atomic.send(a, b);
            atomic.tick(a);
        }
        atomic.advance_all(2);
        atomic.send(3, 4);

        let local = line_machine(10);
        let mut scratch = LocalChargeScratch::new();
        let mut lc = local.begin_local_charge(&mut scratch);
        for &(a, b) in ops {
            lc.send(a, b);
            lc.tick(a);
        }
        lc.advance_all(2);
        lc.send(3, 4);
        lc.commit();

        assert_eq!(atomic.report(), local.report());
        for s in 0..10 {
            assert_eq!(atomic.clock(s), local.clock(s), "slot {s}");
        }
    }

    #[test]
    fn local_charge_round_matches_atomic_round() {
        // Batches where slots are both senders and receivers (the relay
        // chain case) must match Machine::round's two-phase semantics.
        let batches: &[&[(u32, u32)]] = &[
            &[(0, 1), (1, 2), (2, 3)],
            &[(3, 0), (0, 3)],
            &[],
            &[(5, 4), (4, 5), (1, 4)],
        ];
        let atomic = line_machine(8);
        for batch in batches {
            atomic.round(batch);
        }
        let local = line_machine(8);
        let mut scratch = LocalChargeScratch::new();
        let mut lc = local.begin_local_charge(&mut scratch);
        for batch in batches {
            lc.round(batch);
        }
        lc.commit();
        assert_eq!(atomic.report(), local.report());
        for s in 0..8 {
            assert_eq!(atomic.clock(s), local.clock(s), "slot {s}");
        }
    }

    #[test]
    fn local_charge_traces_like_atomic_path() {
        // On traced machines a session records the identical events as
        // the equivalent atomic sends/rounds.
        let build = || {
            MachineBuilder::from_points((0..8).map(|i| GridPoint::new(i, 0)).collect())
                .trace(true)
                .build()
        };
        let atomic = build();
        atomic.send(0, 3);
        atomic.round(&[(3, 1), (1, 5)]);
        atomic.send(5, 2);

        let local = build();
        let mut scratch = LocalChargeScratch::new();
        let mut lc = local.begin_local_charge(&mut scratch);
        lc.send(0, 3);
        lc.round(&[(3, 1), (1, 5)]);
        lc.send(5, 2);
        lc.commit();

        assert_eq!(atomic.take_trace(), local.take_trace());
        assert_eq!(atomic.report(), local.report());
    }

    #[test]
    fn local_charge_resumes_from_prior_state() {
        // Charges before the session are visible inside it, and charges
        // after commit chain on the session's clocks.
        let m = line_machine(8);
        m.send(0, 1);
        m.send(1, 2); // clock(2) = 2
        let mut scratch = LocalChargeScratch::new();
        let mut lc = m.begin_local_charge(&mut scratch);
        assert_eq!(lc.clock(2), 2);
        lc.send(2, 3);
        assert_eq!(lc.depth(), 3);
        lc.commit();
        m.send(3, 4);
        assert_eq!(m.clock(4), 4);
        assert_eq!(m.depth(), 4);
    }

    #[test]
    fn local_charge_pointer_round_matches_machine() {
        // The bulk/pointer-round mirrors must evolve counters and clocks
        // exactly like the atomic path — the ranking-through-session
        // equivalence the layout differential suite relies on.
        let atomic = line_machine(8);
        atomic.send(0, 1);
        atomic.charge_pointer_round(17, 3);
        atomic.charge_bulk(5, 2, 1);
        atomic.send(4, 5);

        let local = line_machine(8);
        let mut scratch = LocalChargeScratch::new();
        let mut lc = local.begin_local_charge(&mut scratch);
        lc.send(0, 1);
        RoundCharger::charge_pointer_round(&mut lc, 17, 3);
        lc.charge_bulk(5, 2, 1);
        lc.send(4, 5);
        lc.commit();

        assert_eq!(atomic.report(), local.report());
        for s in 0..8 {
            assert_eq!(atomic.clock(s), local.clock(s), "slot {s}");
        }
    }

    #[test]
    fn dist_sum_and_pointer_round() {
        let m = line_machine(10);
        let pairs = [(0u32, 3u32), (9, 4)];
        let e = m.dist_sum(pairs);
        assert_eq!(e, 3 + 5);
        m.charge_pointer_round(e, 2);
        assert_eq!(m.energy(), 8);
        assert_eq!(m.message_count(), 2);
        assert_eq!(m.work(), 2);
        assert_eq!(m.depth(), 1);
    }

    #[test]
    fn parallel_charging_is_consistent() {
        use rayon::prelude::*;
        let m = line_machine(1000);
        (0..999u32).into_par_iter().for_each(|i| m.send(i, i + 1));
        assert_eq!(m.message_count(), 999);
        assert_eq!(m.energy(), 999);
        // Depth is at least 1 and at most the chain length; with parallel
        // interleaving the exact value varies, but energy must not.
        assert!(m.depth() >= 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use spatial_sfc::CurveKind;

    proptest! {
        /// Energy equals the sum of per-message Manhattan distances,
        /// independent of send interleaving.
        #[test]
        fn prop_energy_is_sum_of_distances(
            msgs in proptest::collection::vec((0u32..64, 0u32..64), 1..50)
        ) {
            let m = Machine::on_curve(CurveKind::Hilbert, 64);
            let mut expect = 0u64;
            for &(a, b) in &msgs {
                expect += m.dist(a, b);
                m.send(a, b);
            }
            prop_assert_eq!(m.energy(), expect);
            prop_assert_eq!(m.message_count(), msgs.len() as u64);
        }

        /// Depth is monotone: more messages never decrease it, and it
        /// never exceeds the message count.
        #[test]
        fn prop_depth_monotone_and_bounded(
            msgs in proptest::collection::vec((0u32..32, 0u32..32), 1..40)
        ) {
            let m = Machine::on_curve(CurveKind::Hilbert, 32);
            let mut last = 0;
            for &(a, b) in &msgs {
                m.send(a, b);
                let d = m.depth();
                prop_assert!(d >= last);
                last = d;
            }
            prop_assert!(m.depth() as usize <= msgs.len());
        }

        /// A round never chains its own messages: depth grows by ≤ 1.
        #[test]
        fn prop_round_depth_grows_by_at_most_one(
            msgs in proptest::collection::vec((0u32..32, 0u32..32), 1..40)
        ) {
            let m = Machine::on_curve(CurveKind::Hilbert, 32);
            let before = m.depth();
            m.round(&msgs);
            prop_assert!(m.depth() <= before + 1);
        }

        /// Clocks respect the floor after advance_all.
        #[test]
        fn prop_floor_lifts_all(extra in 1u32..50, slot in 0u32..16) {
            let m = Machine::on_curve(CurveKind::Hilbert, 16);
            m.send(0, 1);
            m.advance_all(extra);
            prop_assert!(m.clock(slot) > extra);
        }
    }
}
