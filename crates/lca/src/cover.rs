//! Subtree covers from path decompositions (§VI-B, Fig. 8), stored as
//! a layer-indexed CSR.
//!
//! Given a heavy-path decomposition, the cover contains the subtree
//! rooted at each path's head. Subtrees of the same layer are pairwise
//! disjoint; subtrees across layers nest. In light-first order each
//! cover subtree is a contiguous slot range, which is what lets the LCA
//! algorithm broadcast within subtrees at linear energy (Lemma 13).
//!
//! # Storage
//!
//! The seed implementation kept one heap-allocated `Vec<CoverSubtree>`
//! per layer. The cover is rebuilt for every tree the LCA engine is
//! pointed at and walked once per layer per run, so it is now four flat
//! arrays (`roots`, `parents`, `los`, `his`) plus a `layer_offsets`
//! prefix array: layer `i`'s subtrees occupy the index range
//! `layer_offsets[i] .. layer_offsets[i + 1]`, sorted by range start.
//! One allocation per array, cache-contiguous layer walks, and the
//! `(lo, hi)` pairs the step-4 broadcast loop needs are directly
//! addressable as slices. The seed layout survives as
//! [`crate::reference::ReferenceCover`].

use spatial_layout::Layout;
use spatial_tree::{HeavyPathDecomposition, NodeId, Tree, NIL};

/// One cover subtree: rooted at a path head, spanning a contiguous
/// light-first range. A by-value view into the CSR arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverSubtree {
    /// The path head this subtree is rooted at.
    pub root: NodeId,
    /// The root's parent (the candidate LCA answer), `None` for the
    /// tree root's path.
    pub parent: Option<NodeId>,
    /// First slot of the subtree's range.
    pub lo: u32,
    /// One past the last slot of the range.
    pub hi: u32,
}

impl CoverSubtree {
    /// Whether a slot lies inside this subtree's range.
    pub fn contains_slot(&self, slot: u32) -> bool {
        self.lo <= slot && slot < self.hi
    }
}

/// The subtree cover as a layer-indexed CSR over flat slot ranges.
#[derive(Debug, Clone)]
pub struct SubtreeCover {
    /// Path head of each cover subtree.
    roots: Vec<NodeId>,
    /// Parent of each head (`NIL` for the tree root's path).
    parents: Vec<NodeId>,
    /// First slot of each subtree's range.
    los: Vec<u32>,
    /// One past the last slot of each subtree's range.
    his: Vec<u32>,
    /// Layer `i` occupies indices `layer_offsets[i] ..
    /// layer_offsets[i + 1]`, sorted by `lo`.
    layer_offsets: Vec<u32>,
}

impl SubtreeCover {
    /// Builds the cover from a decomposition, a light-first layout, and
    /// subtree sizes.
    pub fn new(
        tree: &Tree,
        layout: &Layout,
        decomposition: &HeavyPathDecomposition,
        sizes: &[u32],
    ) -> Self {
        let num_layers = decomposition.num_layers() as usize;
        // Count heads per layer, then place each head at its layer's
        // cursor — a counting sort by layer. Within a layer, heads are
        // then ordered by range start (their head's slot).
        let mut layer_offsets = vec![0u32; num_layers + 1];
        for v in tree.vertices() {
            if decomposition.head[v as usize] == v {
                layer_offsets[decomposition.layer[v as usize] as usize + 1] += 1;
            }
        }
        for i in 0..num_layers {
            layer_offsets[i + 1] += layer_offsets[i];
        }
        let total = layer_offsets[num_layers] as usize;

        let mut roots = vec![NIL; total];
        let mut los = vec![0u32; total];
        let mut cursor: Vec<u32> = layer_offsets[..num_layers].to_vec();
        for v in tree.vertices() {
            if decomposition.head[v as usize] == v {
                let li = decomposition.layer[v as usize] as usize;
                let at = cursor[li] as usize;
                cursor[li] += 1;
                roots[at] = v;
                los[at] = layout.slot(v);
            }
        }
        // Sort each layer by range start so queries can binary-search.
        for i in 0..num_layers {
            let (s, e) = (layer_offsets[i] as usize, layer_offsets[i + 1] as usize);
            let mut keyed: Vec<(u32, NodeId)> = los[s..e]
                .iter()
                .copied()
                .zip(roots[s..e].iter().copied())
                .collect();
            keyed.sort_unstable();
            for (k, &(lo, root)) in keyed.iter().enumerate() {
                los[s + k] = lo;
                roots[s + k] = root;
            }
        }
        let parents: Vec<NodeId> = roots
            .iter()
            .map(|&r| tree.parent(r).unwrap_or(NIL))
            .collect();
        let his: Vec<u32> = roots
            .iter()
            .zip(los.iter())
            .map(|(&r, &lo)| lo + sizes[r as usize])
            .collect();

        SubtreeCover {
            roots,
            parents,
            los,
            his,
            layer_offsets,
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> u32 {
        (self.layer_offsets.len() - 1) as u32
    }

    /// The index range of layer `i` in the flat arrays.
    #[inline]
    pub fn layer_span(&self, i: u32) -> std::ops::Range<usize> {
        self.layer_offsets[i as usize] as usize..self.layer_offsets[i as usize + 1] as usize
    }

    /// The `(lo, hi)` slot-range arrays of layer `i`, sorted by `lo` —
    /// exactly what the step-4 broadcast loop walks.
    #[inline]
    pub fn layer_ranges(&self, i: u32) -> (&[u32], &[u32]) {
        let span = self.layer_span(i);
        (&self.los[span.clone()], &self.his[span])
    }

    /// The subtree at flat index `idx`.
    #[inline]
    pub fn subtree(&self, idx: usize) -> CoverSubtree {
        let parent = self.parents[idx];
        CoverSubtree {
            root: self.roots[idx],
            parent: (parent != NIL).then_some(parent),
            lo: self.los[idx],
            hi: self.his[idx],
        }
    }

    /// The subtrees of layer `i`, sorted by range start.
    pub fn layer(&self, i: u32) -> impl Iterator<Item = CoverSubtree> + '_ {
        self.layer_span(i).map(|idx| self.subtree(idx))
    }

    /// Finds the layer-`i` subtree containing a slot, if any (binary
    /// search; same-layer subtrees are disjoint).
    pub fn find_in_layer(&self, i: u32, slot: u32) -> Option<CoverSubtree> {
        let span = self.layer_span(i);
        let layer_los = &self.los[span.clone()];
        let idx = layer_los.partition_point(|&lo| lo <= slot);
        if idx == 0 {
            return None;
        }
        let cand = self.subtree(span.start + idx - 1);
        cand.contains_slot(slot).then_some(cand)
    }

    /// Total number of cover subtrees.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// Whether the cover is empty (never, for a non-empty tree).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many cover subtrees contain each vertex (the paper: at least
    /// one and at most O(log n)).
    pub fn membership_counts(&self, layout: &Layout) -> Vec<u32> {
        let mut counts = vec![0u32; layout.n() as usize];
        for (&lo, &hi) in self.los.iter().zip(self.his.iter()) {
            for slot in lo..hi {
                counts[layout.vertex_at(slot) as usize] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    fn build(t: &Tree) -> (Layout, SubtreeCover) {
        let layout = Layout::light_first(t, CurveKind::Hilbert);
        let sizes = t.subtree_sizes();
        let d = HeavyPathDecomposition::with_sizes(t, &sizes);
        let cover = SubtreeCover::new(t, &layout, &d, &sizes);
        (layout, cover)
    }

    #[test]
    fn ranges_are_subtree_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = generators::uniform_random(300, &mut rng);
        let sizes = t.subtree_sizes();
        let (layout, cover) = build(&t);
        for i in 0..cover.num_layers() {
            for s in cover.layer(i) {
                assert_eq!(s.hi - s.lo, sizes[s.root as usize], "root {}", s.root);
                assert_eq!(layout.slot(s.root), s.lo, "head starts its range");
            }
        }
    }

    #[test]
    fn same_layer_disjoint() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = generators::preferential_attachment(500, &mut rng);
        let (_, cover) = build(&t);
        for i in 0..cover.num_layers() {
            let (los, his) = cover.layer_ranges(i);
            for k in 1..los.len() {
                assert!(his[k - 1] <= los[k], "layer {i} overlap");
            }
        }
    }

    #[test]
    fn every_vertex_covered_at_most_log_times() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [50u32, 500, 5000] {
            let t = generators::uniform_random(n, &mut rng);
            let (layout, cover) = build(&t);
            let counts = cover.membership_counts(&layout);
            let bound = (n as f64).log2().ceil() as u32 + 1;
            for v in t.vertices() {
                assert!(counts[v as usize] >= 1, "vertex {v} uncovered");
                assert!(
                    counts[v as usize] <= bound,
                    "vertex {v} in {} > {bound} subtrees",
                    counts[v as usize]
                );
            }
        }
    }

    #[test]
    fn layer_zero_is_whole_tree() {
        let t = generators::comb(40);
        let (_, cover) = build(&t);
        let layer0: Vec<CoverSubtree> = cover.layer(0).collect();
        assert_eq!(layer0.len(), 1);
        assert_eq!(layer0[0].root, t.root());
        assert_eq!(layer0[0].parent, None);
        assert_eq!((layer0[0].lo, layer0[0].hi), (0, 40));
    }

    #[test]
    fn find_in_layer_hits() {
        let t = generators::star(10);
        let (layout, cover) = build(&t);
        // Layer 1: nine singleton subtrees minus the heavy child.
        assert_eq!(cover.layer_span(1).len(), 8);
        for s in cover.layer(1) {
            let found = cover.find_in_layer(1, layout.slot(s.root)).unwrap();
            assert_eq!(found.root, s.root);
        }
        // The root's slot is not in any layer-1 subtree.
        assert!(cover.find_in_layer(1, layout.slot(0)).is_none());
    }

    #[test]
    fn csr_matches_reference_cover() {
        // The CSR cover and the seed nested cover describe the same
        // subtrees, layer by layer, in the same order.
        let mut rng = StdRng::seed_from_u64(5);
        for fam in generators::TreeFamily::ALL {
            let t = fam.generate(257, &mut rng);
            let layout = Layout::light_first(&t, CurveKind::Hilbert);
            let sizes = t.subtree_sizes();
            let d = HeavyPathDecomposition::with_sizes(&t, &sizes);
            let csr = SubtreeCover::new(&t, &layout, &d, &sizes);
            let reference = crate::reference::ReferenceCover::new(&t, &layout, &d, &sizes);
            assert_eq!(csr.num_layers(), reference.num_layers(), "{fam}");
            for i in 0..csr.num_layers() {
                let got: Vec<CoverSubtree> = csr.layer(i).collect();
                assert_eq!(got, reference.layer(i), "{fam} layer {i}");
            }
        }
    }
}
