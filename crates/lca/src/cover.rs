//! Subtree covers from path decompositions (§VI-B, Fig. 8).
//!
//! Given a heavy-path decomposition, the cover contains the subtree
//! rooted at each path's head. Subtrees of the same layer are pairwise
//! disjoint; subtrees across layers nest. In light-first order each
//! cover subtree is a contiguous slot range, which is what lets the LCA
//! algorithm broadcast within subtrees at linear energy (Lemma 13).

use spatial_layout::Layout;
use spatial_tree::{HeavyPathDecomposition, NodeId, Tree};

/// One cover subtree: rooted at a path head, spanning a contiguous
/// light-first range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverSubtree {
    /// The path head this subtree is rooted at.
    pub root: NodeId,
    /// The root's parent (the candidate LCA answer), `None` for the
    /// tree root's path.
    pub parent: Option<NodeId>,
    /// First slot of the subtree's range.
    pub lo: u32,
    /// One past the last slot of the range.
    pub hi: u32,
}

impl CoverSubtree {
    /// Whether a slot lies inside this subtree's range.
    pub fn contains_slot(&self, slot: u32) -> bool {
        self.lo <= slot && slot < self.hi
    }
}

/// The subtree cover, grouped by layer.
#[derive(Debug, Clone)]
pub struct SubtreeCover {
    layers: Vec<Vec<CoverSubtree>>,
}

impl SubtreeCover {
    /// Builds the cover from a decomposition, a light-first layout, and
    /// subtree sizes.
    pub fn new(
        tree: &Tree,
        layout: &Layout,
        decomposition: &HeavyPathDecomposition,
        sizes: &[u32],
    ) -> Self {
        let mut layers = vec![Vec::new(); decomposition.num_layers() as usize];
        for v in tree.vertices() {
            if decomposition.head[v as usize] == v {
                let lo = layout.slot(v);
                let subtree = CoverSubtree {
                    root: v,
                    parent: tree.parent(v),
                    lo,
                    hi: lo + sizes[v as usize],
                };
                layers[decomposition.layer[v as usize] as usize].push(subtree);
            }
        }
        // Sort each layer by range start so queries can binary-search.
        for layer in &mut layers {
            layer.sort_by_key(|s| s.lo);
        }
        SubtreeCover { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> u32 {
        self.layers.len() as u32
    }

    /// The subtrees of one layer, sorted by range start.
    pub fn layer(&self, i: u32) -> &[CoverSubtree] {
        &self.layers[i as usize]
    }

    /// Finds the layer-`i` subtree containing a slot, if any (binary
    /// search; same-layer subtrees are disjoint).
    pub fn find_in_layer(&self, i: u32, slot: u32) -> Option<&CoverSubtree> {
        let layer = &self.layers[i as usize];
        let idx = layer.partition_point(|s| s.lo <= slot);
        if idx == 0 {
            return None;
        }
        let cand = &layer[idx - 1];
        cand.contains_slot(slot).then_some(cand)
    }

    /// Total number of cover subtrees.
    pub fn len(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Whether the cover is empty (never, for a non-empty tree).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many cover subtrees contain each vertex (the paper: at least
    /// one and at most O(log n)).
    pub fn membership_counts(&self, layout: &Layout) -> Vec<u32> {
        let mut counts = vec![0u32; layout.n() as usize];
        for layer in &self.layers {
            for s in layer {
                for slot in s.lo..s.hi {
                    counts[layout.vertex_at(slot) as usize] += 1;
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    fn build(t: &Tree) -> (Layout, SubtreeCover) {
        let layout = Layout::light_first(t, CurveKind::Hilbert);
        let sizes = t.subtree_sizes();
        let d = HeavyPathDecomposition::with_sizes(t, &sizes);
        let cover = SubtreeCover::new(t, &layout, &d, &sizes);
        (layout, cover)
    }

    #[test]
    fn ranges_are_subtree_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = generators::uniform_random(300, &mut rng);
        let sizes = t.subtree_sizes();
        let (layout, cover) = build(&t);
        for i in 0..cover.num_layers() {
            for s in cover.layer(i) {
                assert_eq!(s.hi - s.lo, sizes[s.root as usize], "root {}", s.root);
                assert_eq!(layout.slot(s.root), s.lo, "head starts its range");
            }
        }
    }

    #[test]
    fn same_layer_disjoint() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = generators::preferential_attachment(500, &mut rng);
        let (_, cover) = build(&t);
        for i in 0..cover.num_layers() {
            let layer = cover.layer(i);
            for w in layer.windows(2) {
                assert!(w[0].hi <= w[1].lo, "layer {i} overlap");
            }
        }
    }

    #[test]
    fn every_vertex_covered_at_most_log_times() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [50u32, 500, 5000] {
            let t = generators::uniform_random(n, &mut rng);
            let (layout, cover) = build(&t);
            let counts = cover.membership_counts(&layout);
            let bound = (n as f64).log2().ceil() as u32 + 1;
            for v in t.vertices() {
                assert!(counts[v as usize] >= 1, "vertex {v} uncovered");
                assert!(
                    counts[v as usize] <= bound,
                    "vertex {v} in {} > {bound} subtrees",
                    counts[v as usize]
                );
            }
        }
    }

    #[test]
    fn layer_zero_is_whole_tree() {
        let t = generators::comb(40);
        let (_, cover) = build(&t);
        let layer0 = cover.layer(0);
        assert_eq!(layer0.len(), 1);
        assert_eq!(layer0[0].root, t.root());
        assert_eq!(layer0[0].parent, None);
        assert_eq!((layer0[0].lo, layer0[0].hi), (0, 40));
    }

    #[test]
    fn find_in_layer_hits() {
        let t = generators::star(10);
        let (layout, cover) = build(&t);
        // Layer 1: nine singleton subtrees minus the heavy child.
        assert_eq!(cover.layer(1).len(), 8);
        for s in cover.layer(1) {
            let found = cover.find_in_layer(1, layout.slot(s.root)).unwrap();
            assert_eq!(found.root, s.root);
        }
        // The root's slot is not in any layer-1 subtree.
        assert!(cover.find_in_layer(1, layout.slot(0)).is_none());
    }
}
