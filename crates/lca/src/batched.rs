//! The four-step batched LCA algorithm (§VI-C, Theorem 6) as a
//! reusable flat-array engine.
//!
//! [`LcaEngine`] separates the rng-independent structure of the
//! algorithm — subtree sizes, light-first child CSR, the TRANSFORM
//! relay schedule, the heavy-path decomposition, and the layer-indexed
//! CSR [`SubtreeCover`] — from the per-run work. [`LcaEngine::new`]
//! computes the structure once; [`LcaEngine::run`] then answers any
//! number of query batches, charging exactly the costs of §VI-C:
//!
//! 1. one bottom-up treefix (subtree sizes → ranges; Theorem 6 step 1),
//! 2. the virtual-tree construction + two range/heavy-child broadcasts
//!    replayed from the precomputed CSR schedule (step 2),
//! 3. one top-down treefix over the light-edge indicator (step 3),
//! 4. per layer, the Lemma 13 range broadcast inside every cover
//!    subtree plus a synchronization barrier — charged through a
//!    [`spatial_model::LocalCharge`] session (identical accounting,
//!    no per-message atomics).
//!
//! Queries are resolved by walking each endpoint's head chain (the at
//! most `O(log n)` cover subtrees containing it) instead of rescanning
//! the whole batch once per layer. Costs: `O(n log n)` energy and
//! `O(log² n)` depth w.h.p. for `O(1)` queries per vertex (Theorem 6).
//! The seed implementation is retained as
//! [`crate::reference::batched_lca_reference`]; the differential suite
//! pins this engine to it bit for bit (answers, stats, charges).

use crate::cover::SubtreeCover;
use rand::Rng;
use spatial_layout::Layout;
use spatial_messaging::{BroadcastSchedule, VirtualTree};
use spatial_model::{collectives, LocalChargeScratch, Machine};
use spatial_tree::{ChildrenCsr, HeavyPathDecomposition, NodeId, Tree, NIL};
use spatial_treefix::contraction::ContractionEngine;
use spatial_treefix::Add;

/// Cost-relevant statistics of a batched LCA run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcaStats {
    /// Number of path-decomposition layers processed in step 4.
    pub layers: u32,
    /// Queries answered already in step 1 (ancestor/descendant pairs).
    pub answered_step1: u32,
    /// COMPACT rounds of the two treefix runs (steps 1 and 3).
    pub treefix_rounds: (u32, u32),
}

/// Result of a batched LCA run.
#[derive(Debug, Clone)]
pub struct LcaResult {
    /// `answers[q]` is the LCA of `queries[q]`.
    pub answers: Vec<NodeId>,
    /// Cost statistics.
    pub stats: LcaStats,
}

/// The reusable batched-LCA engine: structure once, any number of
/// query batches.
pub struct LcaEngine<'a> {
    tree: &'a Tree,
    layout: &'a Layout,

    // ---- Rng-independent structure, computed once. ----
    /// Host-side subtree sizes (step 1 recomputes and charges them on
    /// the machine; the values are identical by exactness).
    sizes: Vec<u32>,
    /// Light-first child lists, shared by both treefix runs.
    csr: ChildrenCsr,
    /// CSR relay rounds of the TRANSFORM virtual tree (step 2).
    schedule: BroadcastSchedule,
    /// Heavy-path head of every vertex.
    head: Vec<NodeId>,
    /// Path-decomposition layer of every vertex.
    layer: Vec<u32>,
    /// The layer-indexed CSR subtree cover (§VI-B).
    cover: SubtreeCover,
    /// Step-1 treefix input (`Add(1)` per vertex).
    ones: Vec<Add>,
    /// Step-3 treefix input (light-edge indicator).
    indicator: Vec<Add>,

    // ---- Reusable scratch (allocated once, cleared per use). ----
    /// Clock snapshot + round staging for the local charging sessions
    /// (steps 2 and 4).
    clock_scratch: LocalChargeScratch,
    /// Head chains of the two query endpoints, indexed by layer.
    chain_a: Vec<NodeId>,
    chain_b: Vec<NodeId>,
}

impl<'a> LcaEngine<'a> {
    /// Precomputes the engine's structure for one tree + layout pair.
    /// The tree must be stored in an energy-bound light-first layout
    /// (cover subtrees must be contiguous slot ranges).
    pub fn new(layout: &'a Layout, tree: &'a Tree) -> Self {
        let n = tree.n();
        assert_eq!(layout.n(), n, "layout size mismatch");
        let sizes = tree.subtree_sizes();
        let csr = ChildrenCsr::by_size(tree, &sizes);
        let vt = VirtualTree::with_sizes(tree, &sizes);
        let schedule = BroadcastSchedule::new(&vt, layout, tree);
        let decomposition = HeavyPathDecomposition::with_sizes(tree, &sizes);
        let indicator: Vec<Add> = (0..n)
            .map(|v| match tree.parent(v) {
                // Heavy child: continues the parent's path.
                Some(p) if decomposition.heavy_child[p as usize] == v => Add(0),
                None => Add(0), // root
                _ => Add(1),    // light edge: starts a new path
            })
            .collect();
        let cover = SubtreeCover::new(tree, layout, &decomposition, &sizes);
        let num_layers = cover.num_layers() as usize;
        LcaEngine {
            tree,
            layout,
            sizes,
            csr,
            schedule,
            head: decomposition.head,
            layer: decomposition.layer,
            cover,
            ones: vec![Add(1); n as usize],
            indicator,
            clock_scratch: LocalChargeScratch::with_capacity(n as usize, n as usize),
            chain_a: Vec::with_capacity(num_layers),
            chain_b: Vec::with_capacity(num_layers),
        }
    }

    /// The subtree cover the engine routes queries through.
    pub fn cover(&self) -> &SubtreeCover {
        &self.cover
    }

    /// The light-first child CSR (shared with callers that run further
    /// treefix passes over the same tree, e.g. the min-cut pipeline).
    pub fn children_csr(&self) -> &ChildrenCsr {
        &self.csr
    }

    /// Whether `partner`'s slot lies in `r(parent(root)) \ r(root)` —
    /// the Corollary 3 resolution test; returns the answer `w`.
    #[inline]
    fn resolve(&self, root: NodeId, partner: NodeId) -> Option<NodeId> {
        let w = self.tree.parent(root)?;
        let wlo = self.layout.slot(w);
        let whi = wlo + self.sizes[w as usize];
        let lo = self.layout.slot(root);
        let hi = lo + self.sizes[root as usize];
        let ps = self.layout.slot(partner);
        (wlo <= ps && ps < whi && !(lo <= ps && ps < hi)).then_some(w)
    }

    /// Fills `chain` so `chain[li]` is the head of the layer-`li` cover
    /// subtree containing `v`, for `li = 0 ..= layer[v]` (every vertex
    /// lies in exactly one subtree per layer up to its own).
    fn fill_chain(head: &[NodeId], layer: &[u32], tree: &Tree, chain: &mut Vec<NodeId>, v: NodeId) {
        chain.clear();
        chain.resize(layer[v as usize] as usize + 1, NIL);
        let mut x = v;
        loop {
            let h = head[x as usize];
            chain[layer[h as usize] as usize] = h;
            match tree.parent(h) {
                None => break,
                Some(p) => x = p,
            }
        }
    }

    /// Answers one batch of LCA queries, charging the full §VI-C cost
    /// on `machine`. The random seed affects only costs (the Las Vegas
    /// treefix rounds), never answers.
    pub fn run<R: Rng>(
        &mut self,
        machine: &Machine,
        queries: &[(NodeId, NodeId)],
        rng: &mut R,
    ) -> LcaResult {
        let n = self.tree.n();
        debug_assert_eq!(
            spatial_tree::traversal::verify_light_first(self.tree, self.layout.order()),
            Ok(()),
            "batched LCA requires a light-first layout"
        );

        // ---- Step 1: subtree sizes (bottom-up treefix), ranges, and ----
        // ---- ancestor/descendant answers.                           ----
        let mut tf1 = ContractionEngine::with_children_csr(
            self.tree,
            self.layout,
            machine,
            &self.ones,
            true,
            &self.csr,
        );
        let stats1 = tf1.contract(rng);
        let tf1_values = tf1.uncontract_bottom_up();
        debug_assert!(
            tf1_values
                .iter()
                .map(|a| a.0 as u32)
                .eq(self.sizes.iter().copied()),
            "treefix sizes must match the host sizes"
        );

        let in_range = |v: NodeId, w: NodeId| -> bool {
            let s = self.layout.slot(v);
            let lo = self.layout.slot(w);
            lo <= s && s < lo + self.sizes[w as usize]
        };
        let mut answers = vec![NIL; queries.len()];
        let mut answered_step1 = 0u32;
        for (qi, &(a, b)) in queries.iter().enumerate() {
            assert!(a < n && b < n, "query ({a}, {b}) out of range");
            if a == b || in_range(b, a) {
                // Equal vertices or b a descendant of a: the answer is a.
                answers[qi] = a;
                answered_step1 += 1;
            } else if in_range(a, b) {
                answers[qi] = b;
                answered_step1 += 1;
            }
        }

        // ---- Step 2: every vertex broadcasts its range to its      ----
        // ---- children (and its heavy child id, for the step-3      ----
        // ---- indicator) — the precomputed CSR relay schedule,      ----
        // ---- replayed through a local charging session.            ----
        let mut lc = machine.begin_local_charge(&mut self.clock_scratch);
        self.schedule.charge_construction_into(&mut lc);
        self.schedule.charge_broadcast_into(&mut lc); // subtree ranges
        self.schedule.charge_broadcast_into(&mut lc); // heavy-child ids
        lc.commit();

        // ---- Step 3: layers via top-down treefix over the light-edge ----
        // ---- indicator.                                              ----
        let mut tf3 = ContractionEngine::with_children_csr(
            self.tree,
            self.layout,
            machine,
            &self.indicator,
            false,
            &self.csr,
        );
        let stats3 = tf3.contract(rng);
        let tf3_values = tf3.uncontract_top_down(&self.indicator);
        debug_assert!(
            tf3_values
                .iter()
                .map(|a| a.0 as u32)
                .eq(self.layer.iter().copied()),
            "treefix layers must match the host decomposition"
        );

        // ---- Step 4 charging: per layer, broadcast inside every    ----
        // ---- cover subtree (Lemma 13) and barrier — one local       ----
        // ---- charging session for the whole phase.                  ----
        let mut lc = machine.begin_local_charge(&mut self.clock_scratch);
        for li in 0..self.cover.num_layers() {
            let (los, his) = self.cover.layer_ranges(li);
            for (&lo, &hi) in los.iter().zip(his.iter()) {
                if hi - lo >= 2 {
                    collectives::range_broadcast_local(&mut lc, lo, hi);
                }
            }
            // Synchronization barrier before the next layer (§VI-C).
            collectives::barrier_local(&mut lc);
        }
        lc.commit();

        // ---- Step 4 resolution: walk each query's head chains from ----
        // ---- layer 0 upward; the first layer whose subtree isolates ----
        // ---- one endpoint answers the query (Corollary 3).          ----
        for (qi, &(a, b)) in queries.iter().enumerate() {
            if answers[qi] != NIL {
                continue;
            }
            Self::fill_chain(&self.head, &self.layer, self.tree, &mut self.chain_a, a);
            Self::fill_chain(&self.head, &self.layer, self.tree, &mut self.chain_b, b);
            let (la, lb) = (self.layer[a as usize], self.layer[b as usize]);
            for li in 0..=la.max(lb) as usize {
                if li <= la as usize {
                    if let Some(w) = self.resolve(self.chain_a[li], b) {
                        answers[qi] = w;
                        break;
                    }
                }
                if li <= lb as usize {
                    if let Some(w) = self.resolve(self.chain_b[li], a) {
                        answers[qi] = w;
                        break;
                    }
                }
            }
        }

        debug_assert!(
            answers.iter().all(|&a| a != NIL),
            "Corollary 3 guarantees every query resolves"
        );

        LcaResult {
            answers,
            stats: LcaStats {
                layers: self.cover.num_layers(),
                answered_step1,
                treefix_rounds: (stats1.compact_rounds, stats3.compact_rounds),
            },
        }
    }
}

/// Answers a batch of LCA queries on the spatial machine.
///
/// The tree must be stored in an energy-bound light-first layout (cover
/// subtrees must be contiguous slot ranges). Costs: `O(n log n)` energy
/// and `O(log² n)` depth w.h.p. when every vertex appears in `O(1)`
/// queries (Theorem 6). One-shot wrapper over [`LcaEngine`]; callers
/// that answer several batches on the same tree should hold an engine.
pub fn batched_lca<R: Rng>(
    machine: &Machine,
    layout: &Layout,
    tree: &Tree,
    queries: &[(NodeId, NodeId)],
    rng: &mut R,
) -> LcaResult {
    LcaEngine::new(layout, tree).run(machine, queries, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostLca;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    fn random_queries<R: Rng>(n: u32, count: usize, rng: &mut R) -> Vec<(NodeId, NodeId)> {
        (0..count)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect()
    }

    fn check_against_host(t: &Tree, queries: &[(NodeId, NodeId)], seed: u64) -> LcaStats {
        let layout = Layout::light_first(t, CurveKind::Hilbert);
        let machine = layout.machine();
        let res = batched_lca(
            &machine,
            &layout,
            t,
            queries,
            &mut StdRng::seed_from_u64(seed),
        );
        let host = HostLca::new(t);
        for (qi, &(a, b)) in queries.iter().enumerate() {
            assert_eq!(res.answers[qi], host.query(a, b), "query ({a}, {b})");
        }
        res.stats
    }

    #[test]
    fn correct_on_all_families() {
        let mut rng = StdRng::seed_from_u64(30);
        for fam in generators::TreeFamily::ALL {
            let t = fam.generate(257, &mut rng);
            let queries = random_queries(t.n(), 200, &mut rng);
            check_against_host(&t, &queries, 31);
        }
    }

    #[test]
    fn ancestor_pairs_resolved_in_step1() {
        let t = generators::path(64);
        let queries: Vec<(NodeId, NodeId)> = (0..32).map(|i| (i, i + 32)).collect();
        let stats = check_against_host(&t, &queries, 32);
        assert_eq!(stats.answered_step1, 32, "all pairs are ancestor pairs");
    }

    #[test]
    fn sibling_pairs_need_the_cover() {
        let t = generators::star(100);
        let queries: Vec<(NodeId, NodeId)> = (1..50).map(|i| (i, i + 49)).collect();
        let stats = check_against_host(&t, &queries, 33);
        assert_eq!(stats.answered_step1, 0);
        assert_eq!(stats.layers, 2);
    }

    #[test]
    fn self_queries() {
        let t = generators::comb(30);
        let queries = vec![(7, 7), (0, 0), (29, 29)];
        check_against_host(&t, &queries, 34);
    }

    #[test]
    fn las_vegas_seeds_do_not_change_answers() {
        let mut rng = StdRng::seed_from_u64(35);
        let t = generators::uniform_random(300, &mut rng);
        let queries = random_queries(300, 150, &mut rng);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let mut baseline = None;
        for seed in 0..5 {
            let machine = layout.machine();
            let res = batched_lca(
                &machine,
                &layout,
                &t,
                &queries,
                &mut StdRng::seed_from_u64(seed),
            );
            match &baseline {
                None => baseline = Some(res.answers),
                Some(b) => assert_eq!(&res.answers, b, "seed {seed}"),
            }
        }
    }

    #[test]
    fn engine_reuse_across_batches() {
        // One engine, many batches: every batch answers correctly and
        // a repeated batch answers identically.
        let mut rng = StdRng::seed_from_u64(40);
        let t = generators::preferential_attachment(400, &mut rng);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let host = HostLca::new(&t);
        let mut engine = LcaEngine::new(&layout, &t);
        let mut first = None;
        for batch in 0..4 {
            let queries = random_queries(t.n(), 120, &mut StdRng::seed_from_u64(batch % 2));
            let machine = layout.machine();
            let res = engine.run(&machine, &queries, &mut StdRng::seed_from_u64(41 + batch));
            for (qi, &(a, b)) in queries.iter().enumerate() {
                assert_eq!(res.answers[qi], host.query(a, b), "batch {batch}");
            }
            match (batch % 2, &first) {
                (0, None) => first = Some(res.answers),
                (0, Some(f)) => assert_eq!(&res.answers, f, "repeat batch diverged"),
                _ => {}
            }
        }
    }

    #[test]
    fn theorem6_costs() {
        // O(n log n) energy, O(log² n) depth, with n/2 queries.
        let mut e_norm = Vec::new();
        for log_n in [10u32, 12] {
            let n = 1u32 << log_n;
            let t = generators::random_binary(n, &mut StdRng::seed_from_u64(36));
            let layout = Layout::light_first(&t, CurveKind::Hilbert);
            let machine = layout.machine();
            let mut rng = StdRng::seed_from_u64(37);
            let queries = random_queries(n, (n / 2) as usize, &mut rng);
            batched_lca(&machine, &layout, &t, &queries, &mut rng);
            let r = machine.report();
            e_norm.push(r.energy_per_n_log_n(n as u64));
            let log2 = (log_n as f64) * (log_n as f64);
            assert!(
                (r.depth as f64) < 40.0 * log2,
                "n=2^{log_n}: depth {} not O(log² n)",
                r.depth
            );
        }
        assert!(
            e_norm[1] / e_norm[0] < 2.0,
            "energy/(n log n) should stay flat: {e_norm:?}"
        );
    }

    #[test]
    fn zorder_layout_works() {
        let mut rng = StdRng::seed_from_u64(38);
        let t = generators::yule(200, &mut rng);
        let layout = Layout::light_first(&t, CurveKind::ZOrder);
        let machine = layout.machine();
        let queries = random_queries(t.n(), 100, &mut rng);
        let res = batched_lca(&machine, &layout, &t, &queries, &mut rng);
        let host = HostLca::new(&t);
        for (qi, &(a, b)) in queries.iter().enumerate() {
            assert_eq!(res.answers[qi], host.query(a, b));
        }
    }

    #[test]
    fn single_vertex_tree() {
        let t = Tree::from_parents(0, vec![spatial_tree::NIL]);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let res = batched_lca(
            &machine,
            &layout,
            &t,
            &[(0, 0)],
            &mut StdRng::seed_from_u64(39),
        );
        assert_eq!(res.answers, vec![0]);
    }
}
