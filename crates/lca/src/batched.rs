//! The four-step batched LCA algorithm (§VI-C, Theorem 6).

use crate::cover::{CoverSubtree, SubtreeCover};
use rand::Rng;
use spatial_layout::Layout;
use spatial_messaging::{local_broadcast, VirtualTree};
use spatial_model::{collectives, Machine};
use spatial_tree::{HeavyPathDecomposition, NodeId, Tree, NIL};
use spatial_treefix::{treefix_bottom_up, treefix_top_down, Add};

/// Cost-relevant statistics of a batched LCA run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcaStats {
    /// Number of path-decomposition layers processed in step 4.
    pub layers: u32,
    /// Queries answered already in step 1 (ancestor/descendant pairs).
    pub answered_step1: u32,
    /// COMPACT rounds of the two treefix runs (steps 1 and 3).
    pub treefix_rounds: (u32, u32),
}

/// Result of a batched LCA run.
#[derive(Debug, Clone)]
pub struct LcaResult {
    /// `answers[q]` is the LCA of `queries[q]`.
    pub answers: Vec<NodeId>,
    /// Cost statistics.
    pub stats: LcaStats,
}

/// Answers a batch of LCA queries on the spatial machine.
///
/// The tree must be stored in an energy-bound light-first layout (cover
/// subtrees must be contiguous slot ranges). Costs: `O(n log n)` energy
/// and `O(log² n)` depth w.h.p. when every vertex appears in `O(1)`
/// queries (Theorem 6).
pub fn batched_lca<R: Rng>(
    machine: &Machine,
    layout: &Layout,
    tree: &Tree,
    queries: &[(NodeId, NodeId)],
    rng: &mut R,
) -> LcaResult {
    let n = tree.n();
    debug_assert_eq!(
        spatial_tree::traversal::verify_light_first(tree, layout.order()),
        Ok(()),
        "batched LCA requires a light-first layout"
    );

    // ---- Step 1: subtree sizes (bottom-up treefix), ranges, and ----
    // ---- ancestor/descendant answers.                           ----
    let ones = vec![Add(1); n as usize];
    let tf1 = treefix_bottom_up(machine, layout, tree, &ones, rng);
    let sizes: Vec<u32> = tf1.values.iter().map(|a| a.0 as u32).collect();
    let range = |v: NodeId| -> (u32, u32) {
        let lo = layout.slot(v);
        (lo, lo + sizes[v as usize])
    };
    let in_range = |v: NodeId, r: (u32, u32)| -> bool {
        let s = layout.slot(v);
        r.0 <= s && s < r.1
    };

    let mut answers = vec![NIL; queries.len()];
    let mut answered_step1 = 0u32;
    for (qi, &(a, b)) in queries.iter().enumerate() {
        assert!(a < n && b < n, "query ({a}, {b}) out of range");
        if a == b || in_range(b, range(a)) {
            // Equal vertices or b a descendant of a: the answer is a.
            answers[qi] = a;
            answered_step1 += 1;
        } else if in_range(a, range(b)) {
            answers[qi] = b;
            answered_step1 += 1;
        }
    }

    // ---- Step 2: every vertex broadcasts its range to its children ----
    // ---- (and its heavy child id, which step 3's indicator needs). ----
    let vt = VirtualTree::with_sizes(tree, &sizes);
    vt.charge_construction(machine, layout);
    let ranges: Vec<(u32, u32)> = (0..n).map(range).collect();
    local_broadcast(machine, layout, &vt, tree, &ranges);
    let heavy: Vec<NodeId> = (0..n)
        .map(|v| {
            tree.children(v)
                .iter()
                .copied()
                .max_by_key(|&c| (sizes[c as usize], c))
                .unwrap_or(NIL)
        })
        .collect();
    let heavy_msg = local_broadcast(machine, layout, &vt, tree, &heavy);

    // ---- Step 3: layers via top-down treefix over the light-edge ----
    // ---- indicator.                                              ----
    let indicator: Vec<Add> = (0..n)
        .map(|v| match heavy_msg[v as usize] {
            Some(h) if h == v => Add(0), // heavy child: continues the path
            None => Add(0),              // root
            _ => Add(1),                 // light edge: starts a new path
        })
        .collect();
    let tf3 = treefix_top_down(machine, layout, tree, &indicator, rng);
    let layer: Vec<u32> = tf3.values.iter().map(|a| a.0 as u32).collect();

    // Host-side view of the decomposition for query routing (the
    // machine costs were charged above; this mirrors the distributed
    // state for the answer bookkeeping).
    let decomposition = HeavyPathDecomposition {
        head: (0..n)
            .map(|v| {
                if indicator[v as usize] == Add(1) || tree.parent(v).is_none() {
                    v
                } else {
                    NIL // filled below: non-heads inherit along heavy edges
                }
            })
            .collect(),
        layer: layer.clone(),
        heavy_child: heavy.clone(),
    };
    let mut head = decomposition.head;
    for &v in spatial_tree::traversal::bfs_order(tree).iter() {
        if head[v as usize] == NIL {
            head[v as usize] = head[tree.parent(v).expect("non-root") as usize];
        }
    }
    let decomposition = HeavyPathDecomposition {
        head,
        layer: layer.clone(),
        heavy_child: heavy,
    };
    let cover = SubtreeCover::new(tree, layout, &decomposition, &sizes);

    // ---- Step 4: per layer, broadcast (r(w), r(x)) inside each ----
    // ---- cover subtree, resolve queries, and barrier.          ----
    let resolve = |s: &CoverSubtree, partner: NodeId| -> Option<NodeId> {
        let w = s.parent?;
        let (wlo, whi) = (layout.slot(w), layout.slot(w) + sizes[w as usize]);
        let ps = layout.slot(partner);
        // partner ∈ r(w) \ r(x) ⇒ the answer is w.
        (wlo <= ps && ps < whi && !s.contains_slot(ps)).then_some(w)
    };

    for li in 0..cover.num_layers() {
        // Broadcast within every layer subtree (Lemma 13); ranges of one
        // layer are disjoint, so the broadcasts run in parallel.
        for s in cover.layer(li) {
            if s.hi - s.lo >= 2 {
                collectives::range_broadcast(machine, s.lo, s.hi);
            }
        }
        for (qi, &(a, b)) in queries.iter().enumerate() {
            if answers[qi] != NIL {
                continue;
            }
            if let Some(s) = cover.find_in_layer(li, layout.slot(a)) {
                if let Some(w) = resolve(s, b) {
                    answers[qi] = w;
                    continue;
                }
            }
            if let Some(s) = cover.find_in_layer(li, layout.slot(b)) {
                if let Some(w) = resolve(s, a) {
                    answers[qi] = w;
                }
            }
        }
        // Synchronization barrier before the next layer (§VI-C).
        collectives::barrier(machine);
    }

    debug_assert!(
        answers.iter().all(|&a| a != NIL),
        "Corollary 3 guarantees every query resolves"
    );

    LcaResult {
        answers,
        stats: LcaStats {
            layers: cover.num_layers(),
            answered_step1,
            treefix_rounds: (tf1.stats.compact_rounds, tf3.stats.compact_rounds),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostLca;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    fn random_queries<R: Rng>(n: u32, count: usize, rng: &mut R) -> Vec<(NodeId, NodeId)> {
        (0..count)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect()
    }

    fn check_against_host(t: &Tree, queries: &[(NodeId, NodeId)], seed: u64) -> LcaStats {
        let layout = Layout::light_first(t, CurveKind::Hilbert);
        let machine = layout.machine();
        let res = batched_lca(
            &machine,
            &layout,
            t,
            queries,
            &mut StdRng::seed_from_u64(seed),
        );
        let host = HostLca::new(t);
        for (qi, &(a, b)) in queries.iter().enumerate() {
            assert_eq!(res.answers[qi], host.query(a, b), "query ({a}, {b})");
        }
        res.stats
    }

    #[test]
    fn correct_on_all_families() {
        let mut rng = StdRng::seed_from_u64(30);
        for fam in generators::TreeFamily::ALL {
            let t = fam.generate(257, &mut rng);
            let queries = random_queries(t.n(), 200, &mut rng);
            check_against_host(&t, &queries, 31);
        }
    }

    #[test]
    fn ancestor_pairs_resolved_in_step1() {
        let t = generators::path(64);
        let queries: Vec<(NodeId, NodeId)> = (0..32).map(|i| (i, i + 32)).collect();
        let stats = check_against_host(&t, &queries, 32);
        assert_eq!(stats.answered_step1, 32, "all pairs are ancestor pairs");
    }

    #[test]
    fn sibling_pairs_need_the_cover() {
        let t = generators::star(100);
        let queries: Vec<(NodeId, NodeId)> = (1..50).map(|i| (i, i + 49)).collect();
        let stats = check_against_host(&t, &queries, 33);
        assert_eq!(stats.answered_step1, 0);
        assert_eq!(stats.layers, 2);
    }

    #[test]
    fn self_queries() {
        let t = generators::comb(30);
        let queries = vec![(7, 7), (0, 0), (29, 29)];
        check_against_host(&t, &queries, 34);
    }

    #[test]
    fn las_vegas_seeds_do_not_change_answers() {
        let mut rng = StdRng::seed_from_u64(35);
        let t = generators::uniform_random(300, &mut rng);
        let queries = random_queries(300, 150, &mut rng);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let mut baseline = None;
        for seed in 0..5 {
            let machine = layout.machine();
            let res = batched_lca(
                &machine,
                &layout,
                &t,
                &queries,
                &mut StdRng::seed_from_u64(seed),
            );
            match &baseline {
                None => baseline = Some(res.answers),
                Some(b) => assert_eq!(&res.answers, b, "seed {seed}"),
            }
        }
    }

    #[test]
    fn theorem6_costs() {
        // O(n log n) energy, O(log² n) depth, with n/2 queries.
        let mut e_norm = Vec::new();
        for log_n in [10u32, 12] {
            let n = 1u32 << log_n;
            let t = generators::random_binary(n, &mut StdRng::seed_from_u64(36));
            let layout = Layout::light_first(&t, CurveKind::Hilbert);
            let machine = layout.machine();
            let mut rng = StdRng::seed_from_u64(37);
            let queries = random_queries(n, (n / 2) as usize, &mut rng);
            batched_lca(&machine, &layout, &t, &queries, &mut rng);
            let r = machine.report();
            e_norm.push(r.energy_per_n_log_n(n as u64));
            let log2 = (log_n as f64) * (log_n as f64);
            assert!(
                (r.depth as f64) < 40.0 * log2,
                "n=2^{log_n}: depth {} not O(log² n)",
                r.depth
            );
        }
        assert!(
            e_norm[1] / e_norm[0] < 2.0,
            "energy/(n log n) should stay flat: {e_norm:?}"
        );
    }

    #[test]
    fn zorder_layout_works() {
        let mut rng = StdRng::seed_from_u64(38);
        let t = generators::yule(200, &mut rng);
        let layout = Layout::light_first(&t, CurveKind::ZOrder);
        let machine = layout.machine();
        let queries = random_queries(t.n(), 100, &mut rng);
        let res = batched_lca(&machine, &layout, &t, &queries, &mut rng);
        let host = HostLca::new(&t);
        for (qi, &(a, b)) in queries.iter().enumerate() {
            assert_eq!(res.answers[qi], host.query(a, b));
        }
    }

    #[test]
    fn single_vertex_tree() {
        let t = Tree::from_parents(0, vec![spatial_tree::NIL]);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let res = batched_lca(
            &machine,
            &layout,
            &t,
            &[(0, 0)],
            &mut StdRng::seed_from_u64(39),
        );
        assert_eq!(res.answers, vec![0]);
    }
}
