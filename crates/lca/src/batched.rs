//! The four-step batched LCA algorithm (§VI-C, Theorem 6) as a
//! reusable flat-array engine.
//!
//! [`LcaEngine`] separates the rng-independent structure of the
//! algorithm — subtree sizes, light-first child CSR, the TRANSFORM
//! relay schedule, the heavy-path decomposition, and the layer-indexed
//! CSR [`SubtreeCover`] — from the per-run work. [`LcaEngine::new`]
//! (or [`LcaEngine::bind`], which reuses the retained buffers of an
//! existing engine) computes the structure once per tree;
//! [`LcaEngine::run`] then answers any number of query batches,
//! charging exactly the costs of §VI-C:
//!
//! 1. one bottom-up treefix (subtree sizes → ranges; Theorem 6 step 1),
//! 2. the virtual-tree construction + two range/heavy-child broadcasts
//!    replayed from the precomputed CSR schedule (step 2),
//! 3. one top-down treefix over the light-edge indicator (step 3),
//! 4. per layer, the Lemma 13 range broadcast inside every cover
//!    subtree plus a synchronization barrier — charged through a
//!    [`spatial_model::LocalCharge`] session (identical accounting,
//!    no per-message atomics).
//!
//! Queries are resolved by walking each endpoint's head chain (the at
//! most `O(log n)` cover subtrees containing it) instead of rescanning
//! the whole batch once per layer. Costs: `O(n log n)` energy and
//! `O(log² n)` depth w.h.p. for `O(1)` queries per vertex (Theorem 6).
//!
//! The engine owns everything it needs — tree structure is copied into
//! flat arrays at bind — so the session layer's pool can hold one
//! engine across tree mutations. Both treefix passes run on retained,
//! rebindable [`ContractionEngine`]s, so [`LcaEngine::run_into`]
//! performs **zero heap allocation** (the answers land in a
//! caller-retained buffer). The seed implementation is retained as
//! [`crate::reference::batched_lca_reference`]; the differential suite
//! pins this engine to it bit for bit (answers, stats, charges).

use crate::cover::SubtreeCover;
use rand::Rng;
use spatial_layout::Layout;
use spatial_messaging::{BroadcastSchedule, VirtualTree};
use spatial_model::{collectives, EngineLifecycle, LocalChargeScratch, Machine, Slot};
use spatial_tree::{ChildrenCsr, HeavyPathDecomposition, NodeId, Tree, NIL};
use spatial_treefix::contraction::ContractionEngine;
use spatial_treefix::Add;

/// Cost-relevant statistics of a batched LCA run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcaStats {
    /// Number of path-decomposition layers processed in step 4.
    pub layers: u32,
    /// Queries answered already in step 1 (ancestor/descendant pairs).
    pub answered_step1: u32,
    /// COMPACT rounds of the two treefix runs (steps 1 and 3).
    pub treefix_rounds: (u32, u32),
}

/// Result of a batched LCA run.
#[derive(Debug, Clone)]
pub struct LcaResult {
    /// `answers[q]` is the LCA of `queries[q]`.
    pub answers: Vec<NodeId>,
    /// Cost statistics.
    pub stats: LcaStats,
}

/// The rng-independent per-tree structure of the engine, rebuilt by
/// [`LcaEngine::bind`].
struct Structure {
    n: u32,
    /// Parent of every vertex ([`NIL`] at the root) — the only tree
    /// shape the resolution walks need.
    parents: Vec<NodeId>,
    /// Machine slot of every vertex, copied from the layout.
    slots: Vec<Slot>,
    /// Host-side subtree sizes (step 1 recomputes and charges them on
    /// the machine; the values are identical by exactness).
    sizes: Vec<u32>,
    /// Light-first child lists, shared by both treefix runs.
    csr: ChildrenCsr,
    /// CSR relay rounds of the TRANSFORM virtual tree (step 2).
    schedule: BroadcastSchedule,
    /// Heavy-path head of every vertex.
    head: Vec<NodeId>,
    /// Path-decomposition layer of every vertex.
    layer: Vec<u32>,
    /// The layer-indexed CSR subtree cover (§VI-B).
    cover: SubtreeCover,
    /// Step-1 treefix input (`Add(1)` per vertex).
    ones: Vec<Add>,
    /// Step-3 treefix input (light-edge indicator).
    indicator: Vec<Add>,
}

impl Structure {
    fn build(layout: &Layout, tree: &Tree) -> Self {
        let n = tree.n();
        assert_eq!(layout.n(), n, "layout size mismatch");
        debug_assert_eq!(
            spatial_tree::traversal::verify_light_first(tree, layout.order()),
            Ok(()),
            "batched LCA requires a light-first layout"
        );
        let sizes = tree.subtree_sizes();
        let csr = ChildrenCsr::by_size(tree, &sizes);
        let vt = VirtualTree::with_sizes(tree, &sizes);
        let schedule = BroadcastSchedule::new(&vt, layout, tree);
        let decomposition = HeavyPathDecomposition::with_sizes(tree, &sizes);
        let indicator: Vec<Add> = (0..n)
            .map(|v| match tree.parent(v) {
                // Heavy child: continues the parent's path.
                Some(p) if decomposition.heavy_child[p as usize] == v => Add(0),
                None => Add(0), // root
                _ => Add(1),    // light edge: starts a new path
            })
            .collect();
        let cover = SubtreeCover::new(tree, layout, &decomposition, &sizes);
        Structure {
            n,
            parents: tree.parents().to_vec(),
            slots: (0..n).map(|v| layout.slot(v)).collect(),
            sizes,
            csr,
            schedule,
            head: decomposition.head,
            layer: decomposition.layer,
            cover,
            ones: vec![Add(1); n as usize],
            indicator,
        }
    }
}

/// The reusable batched-LCA engine: structure once per tree, any
/// number of query batches; rebindable to new trees through the
/// session pool's `reset/reserve/run` lifecycle.
pub struct LcaEngine {
    structure: Structure,

    // ---- Retained per-run engines and scratch. ----
    /// Step-1 bottom-up treefix (subtree sizes), rebound per run.
    tf1: ContractionEngine<Add>,
    /// Step-3 top-down treefix (layers), rebound per run.
    tf3: ContractionEngine<Add>,
    /// Clock snapshot + round staging for the local charging sessions
    /// (steps 2 and 4).
    clock_scratch: LocalChargeScratch,
    /// Head chains of the two query endpoints, indexed by layer.
    chain_a: Vec<NodeId>,
    chain_b: Vec<NodeId>,
}

impl LcaEngine {
    /// Precomputes the engine's structure for one tree + layout pair.
    /// The tree must be stored in an energy-bound light-first layout
    /// (cover subtrees must be contiguous slot ranges).
    pub fn new(layout: &Layout, tree: &Tree) -> Self {
        let structure = Structure::build(layout, tree);
        let n = structure.n as usize;
        let num_layers = structure.cover.num_layers() as usize;
        // Staging must hold the schedule's widest charged round, which
        // exceeds n (construction rounds carry two pairs per vertex).
        let round = n.max(structure.schedule.max_round_len());
        LcaEngine {
            structure,
            tf1: ContractionEngine::with_capacity(n),
            tf3: ContractionEngine::with_capacity(n),
            clock_scratch: LocalChargeScratch::with_capacity(n, round),
            chain_a: Vec::with_capacity(num_layers),
            chain_b: Vec::with_capacity(num_layers),
        }
    }

    /// Rebinds the engine to a (possibly different, possibly larger)
    /// tree + layout pair, rebuilding the per-tree structure while
    /// keeping the retained treefix engines and scratch — the pool
    /// path after a tree mutation. Runs stay allocation-free;
    /// rebinding itself allocates the new structure.
    pub fn bind(&mut self, layout: &Layout, tree: &Tree) {
        self.structure = Structure::build(layout, tree);
        let n = self.structure.n as usize;
        self.tf1.reserve(n);
        self.tf3.reserve(n);
        self.clock_scratch
            .reserve(n, n.max(self.structure.schedule.max_round_len()));
    }

    /// The subtree cover the engine routes queries through.
    pub fn cover(&self) -> &SubtreeCover {
        &self.structure.cover
    }

    /// The light-first child CSR (shared with callers that run further
    /// treefix passes over the same tree, e.g. the min-cut pipeline).
    pub fn children_csr(&self) -> &ChildrenCsr {
        &self.structure.csr
    }

    /// Whether `partner`'s slot lies in `r(parent(root)) \ r(root)` —
    /// the Corollary 3 resolution test; returns the answer `w`.
    #[inline]
    fn resolve(&self, root: NodeId, partner: NodeId) -> Option<NodeId> {
        let s = &self.structure;
        let w = s.parents[root as usize];
        if w == NIL {
            return None;
        }
        let wlo = s.slots[w as usize];
        let whi = wlo + s.sizes[w as usize];
        let lo = s.slots[root as usize];
        let hi = lo + s.sizes[root as usize];
        let ps = s.slots[partner as usize];
        (wlo <= ps && ps < whi && !(lo <= ps && ps < hi)).then_some(w)
    }

    /// Fills `chain` so `chain[li]` is the head of the layer-`li` cover
    /// subtree containing `v`, for `li = 0 ..= layer[v]` (every vertex
    /// lies in exactly one subtree per layer up to its own).
    fn fill_chain(
        head: &[NodeId],
        layer: &[u32],
        parents: &[NodeId],
        chain: &mut Vec<NodeId>,
        v: NodeId,
    ) {
        chain.clear();
        chain.resize(layer[v as usize] as usize + 1, NIL);
        let mut x = v;
        loop {
            let h = head[x as usize];
            chain[layer[h as usize] as usize] = h;
            match parents[h as usize] {
                NIL => break,
                p => x = p,
            }
        }
    }

    /// Answers one batch of LCA queries, charging the full §VI-C cost
    /// on `machine`. The random seed affects only costs (the Las Vegas
    /// treefix rounds), never answers. Allocates only the returned
    /// result; [`LcaEngine::run_into`] is the allocation-free variant.
    pub fn run<R: Rng>(
        &mut self,
        machine: &Machine,
        queries: &[(NodeId, NodeId)],
        rng: &mut R,
    ) -> LcaResult {
        let mut answers = Vec::new();
        let stats = self.run_into(machine, queries, &mut answers, rng);
        LcaResult { answers, stats }
    }

    /// [`LcaEngine::run`] into a caller-retained answer buffer:
    /// performs **zero heap allocation** once `answers` has grown to
    /// the batch size (the session layer's steady state).
    pub fn run_into<R: Rng>(
        &mut self,
        machine: &Machine,
        queries: &[(NodeId, NodeId)],
        answers: &mut Vec<NodeId>,
        rng: &mut R,
    ) -> LcaStats {
        let s = &self.structure;
        let n = s.n;
        assert!(n > 0, "bind() a tree first");

        // ---- Step 1: subtree sizes (bottom-up treefix), ranges, and ----
        // ---- ancestor/descendant answers.                           ----
        self.tf1
            .bind_parts(&s.parents, &s.slots, &s.csr, &s.ones, true);
        let stats1 = self.tf1.contract(machine, rng);
        let tf1_values = self.tf1.uncontract_bottom_up(machine);
        debug_assert!(
            tf1_values
                .iter()
                .map(|a| a.0 as u32)
                .eq(s.sizes.iter().copied()),
            "treefix sizes must match the host sizes"
        );

        let in_range = |v: NodeId, w: NodeId| -> bool {
            let sv = s.slots[v as usize];
            let lo = s.slots[w as usize];
            lo <= sv && sv < lo + s.sizes[w as usize]
        };
        answers.clear();
        answers.resize(queries.len(), NIL);
        let mut answered_step1 = 0u32;
        for (qi, &(a, b)) in queries.iter().enumerate() {
            assert!(a < n && b < n, "query ({a}, {b}) out of range");
            if a == b || in_range(b, a) {
                // Equal vertices or b a descendant of a: the answer is a.
                answers[qi] = a;
                answered_step1 += 1;
            } else if in_range(a, b) {
                answers[qi] = b;
                answered_step1 += 1;
            }
        }

        // ---- Step 2: every vertex broadcasts its range to its      ----
        // ---- children (and its heavy child id, for the step-3      ----
        // ---- indicator) — the precomputed CSR relay schedule,      ----
        // ---- replayed through a local charging session.            ----
        let mut lc = machine.begin_local_charge(&mut self.clock_scratch);
        s.schedule.charge_construction_into(&mut lc);
        s.schedule.charge_broadcast_into(&mut lc); // subtree ranges
        s.schedule.charge_broadcast_into(&mut lc); // heavy-child ids
        lc.commit();

        // ---- Step 3: layers via top-down treefix over the light-edge ----
        // ---- indicator.                                              ----
        self.tf3
            .bind_parts(&s.parents, &s.slots, &s.csr, &s.indicator, false);
        let stats3 = self.tf3.contract(machine, rng);
        let tf3_values = self.tf3.uncontract_top_down(machine, &s.indicator);
        debug_assert!(
            tf3_values
                .iter()
                .map(|a| a.0 as u32)
                .eq(s.layer.iter().copied()),
            "treefix layers must match the host decomposition"
        );

        // ---- Step 4 charging: per layer, broadcast inside every    ----
        // ---- cover subtree (Lemma 13) and barrier — one local       ----
        // ---- charging session for the whole phase.                  ----
        let mut lc = machine.begin_local_charge(&mut self.clock_scratch);
        for li in 0..s.cover.num_layers() {
            let (los, his) = s.cover.layer_ranges(li);
            for (&lo, &hi) in los.iter().zip(his.iter()) {
                if hi - lo >= 2 {
                    collectives::range_broadcast_local(&mut lc, lo, hi);
                }
            }
            // Synchronization barrier before the next layer (§VI-C).
            collectives::barrier_local(&mut lc);
        }
        lc.commit();

        // ---- Step 4 resolution: walk each query's head chains from ----
        // ---- layer 0 upward; the first layer whose subtree isolates ----
        // ---- one endpoint answers the query (Corollary 3).          ----
        for (qi, &(a, b)) in queries.iter().enumerate() {
            if answers[qi] != NIL {
                continue;
            }
            let s = &self.structure;
            Self::fill_chain(&s.head, &s.layer, &s.parents, &mut self.chain_a, a);
            Self::fill_chain(&s.head, &s.layer, &s.parents, &mut self.chain_b, b);
            let (la, lb) = (s.layer[a as usize], s.layer[b as usize]);
            for li in 0..=la.max(lb) as usize {
                if li <= la as usize {
                    if let Some(w) = self.resolve(self.chain_a[li], b) {
                        answers[qi] = w;
                        break;
                    }
                }
                if li <= lb as usize {
                    if let Some(w) = self.resolve(self.chain_b[li], a) {
                        answers[qi] = w;
                        break;
                    }
                }
            }
        }

        debug_assert!(
            answers.iter().all(|&a| a != NIL),
            "Corollary 3 guarantees every query resolves"
        );

        LcaStats {
            layers: self.structure.cover.num_layers(),
            answered_step1,
            treefix_rounds: (stats1.compact_rounds, stats3.compact_rounds),
        }
    }
}

impl EngineLifecycle for LcaEngine {
    fn capacity(&self) -> usize {
        self.tf1.capacity()
    }

    fn reserve(&mut self, cap: usize) {
        self.tf1.reserve(cap);
        self.tf3.reserve(cap);
    }

    fn reset(&mut self) {
        self.structure.n = 0;
        self.tf1.reset();
        self.tf3.reset();
    }
}

/// Answers a batch of LCA queries on the spatial machine.
///
/// The tree must be stored in an energy-bound light-first layout (cover
/// subtrees must be contiguous slot ranges). Costs: `O(n log n)` energy
/// and `O(log² n)` depth w.h.p. when every vertex appears in `O(1)`
/// queries (Theorem 6). One-shot wrapper over [`LcaEngine`]; callers
/// that answer several batches on the same tree should hold an engine.
pub fn batched_lca<R: Rng>(
    machine: &Machine,
    layout: &Layout,
    tree: &Tree,
    queries: &[(NodeId, NodeId)],
    rng: &mut R,
) -> LcaResult {
    LcaEngine::new(layout, tree).run(machine, queries, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostLca;
    use rand::prelude::*;
    use spatial_model::CurveKind;
    use spatial_tree::generators;

    fn random_queries<R: Rng>(n: u32, count: usize, rng: &mut R) -> Vec<(NodeId, NodeId)> {
        (0..count)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect()
    }

    fn check_against_host(t: &Tree, queries: &[(NodeId, NodeId)], seed: u64) -> LcaStats {
        let layout = Layout::light_first(t, CurveKind::Hilbert);
        let machine = layout.machine();
        let res = batched_lca(
            &machine,
            &layout,
            t,
            queries,
            &mut StdRng::seed_from_u64(seed),
        );
        let host = HostLca::new(t);
        for (qi, &(a, b)) in queries.iter().enumerate() {
            assert_eq!(res.answers[qi], host.query(a, b), "query ({a}, {b})");
        }
        res.stats
    }

    #[test]
    fn correct_on_all_families() {
        let mut rng = StdRng::seed_from_u64(30);
        for fam in generators::TreeFamily::ALL {
            let t = fam.generate(257, &mut rng);
            let queries = random_queries(t.n(), 200, &mut rng);
            check_against_host(&t, &queries, 31);
        }
    }

    #[test]
    fn ancestor_pairs_resolved_in_step1() {
        let t = generators::path(64);
        let queries: Vec<(NodeId, NodeId)> = (0..32).map(|i| (i, i + 32)).collect();
        let stats = check_against_host(&t, &queries, 32);
        assert_eq!(stats.answered_step1, 32, "all pairs are ancestor pairs");
    }

    #[test]
    fn sibling_pairs_need_the_cover() {
        let t = generators::star(100);
        let queries: Vec<(NodeId, NodeId)> = (1..50).map(|i| (i, i + 49)).collect();
        let stats = check_against_host(&t, &queries, 33);
        assert_eq!(stats.answered_step1, 0);
        assert_eq!(stats.layers, 2);
    }

    #[test]
    fn self_queries() {
        let t = generators::comb(30);
        let queries = vec![(7, 7), (0, 0), (29, 29)];
        check_against_host(&t, &queries, 34);
    }

    #[test]
    fn las_vegas_seeds_do_not_change_answers() {
        let mut rng = StdRng::seed_from_u64(35);
        let t = generators::uniform_random(300, &mut rng);
        let queries = random_queries(300, 150, &mut rng);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let mut baseline = None;
        for seed in 0..5 {
            let machine = layout.machine();
            let res = batched_lca(
                &machine,
                &layout,
                &t,
                &queries,
                &mut StdRng::seed_from_u64(seed),
            );
            match &baseline {
                None => baseline = Some(res.answers),
                Some(b) => assert_eq!(&res.answers, b, "seed {seed}"),
            }
        }
    }

    #[test]
    fn engine_reuse_across_batches() {
        // One engine, many batches: every batch answers correctly and
        // a repeated batch answers identically.
        let mut rng = StdRng::seed_from_u64(40);
        let t = generators::preferential_attachment(400, &mut rng);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let host = HostLca::new(&t);
        let mut engine = LcaEngine::new(&layout, &t);
        let mut first = None;
        for batch in 0..4 {
            let queries = random_queries(t.n(), 120, &mut StdRng::seed_from_u64(batch % 2));
            let machine = layout.machine();
            let res = engine.run(&machine, &queries, &mut StdRng::seed_from_u64(41 + batch));
            for (qi, &(a, b)) in queries.iter().enumerate() {
                assert_eq!(res.answers[qi], host.query(a, b), "batch {batch}");
            }
            match (batch % 2, &first) {
                (0, None) => first = Some(res.answers),
                (0, Some(f)) => assert_eq!(&res.answers, f, "repeat batch diverged"),
                _ => {}
            }
        }
    }

    #[test]
    fn rebinding_across_trees_matches_fresh_engines() {
        // One pooled engine rebound across trees of sizes n, 2n+3, 5
        // answers and charges exactly like a fresh engine per tree.
        let n0 = 150u32;
        let mut engine: Option<LcaEngine> = None;
        for (i, n) in [n0, 2 * n0 + 3, 5].into_iter().enumerate() {
            let t = generators::uniform_random(n, &mut StdRng::seed_from_u64(50 + i as u64));
            let layout = Layout::light_first(&t, CurveKind::Hilbert);
            let queries = random_queries(n, (n / 2) as usize, &mut StdRng::seed_from_u64(60));
            let engine = match engine.as_mut() {
                None => engine.insert(LcaEngine::new(&layout, &t)),
                Some(e) => {
                    e.bind(&layout, &t);
                    e
                }
            };
            let m_pooled = layout.machine();
            let res = engine.run(&m_pooled, &queries, &mut StdRng::seed_from_u64(70));
            let m_fresh = layout.machine();
            let fresh = batched_lca(
                &m_fresh,
                &layout,
                &t,
                &queries,
                &mut StdRng::seed_from_u64(70),
            );
            assert_eq!(res.answers, fresh.answers, "n={n}");
            assert_eq!(res.stats, fresh.stats, "n={n}");
            assert_eq!(m_pooled.report(), m_fresh.report(), "n={n}");
        }
    }

    #[test]
    fn theorem6_costs() {
        // O(n log n) energy, O(log² n) depth, with n/2 queries.
        let mut e_norm = Vec::new();
        for log_n in [10u32, 12] {
            let n = 1u32 << log_n;
            let t = generators::random_binary(n, &mut StdRng::seed_from_u64(36));
            let layout = Layout::light_first(&t, CurveKind::Hilbert);
            let machine = layout.machine();
            let mut rng = StdRng::seed_from_u64(37);
            let queries = random_queries(n, (n / 2) as usize, &mut rng);
            batched_lca(&machine, &layout, &t, &queries, &mut rng);
            let r = machine.report();
            e_norm.push(r.energy_per_n_log_n(n as u64));
            let log2 = (log_n as f64) * (log_n as f64);
            assert!(
                (r.depth as f64) < 40.0 * log2,
                "n=2^{log_n}: depth {} not O(log² n)",
                r.depth
            );
        }
        assert!(
            e_norm[1] / e_norm[0] < 2.0,
            "energy/(n log n) should stay flat: {e_norm:?}"
        );
    }

    #[test]
    fn zorder_layout_works() {
        let mut rng = StdRng::seed_from_u64(38);
        let t = generators::yule(200, &mut rng);
        let layout = Layout::light_first(&t, CurveKind::ZOrder);
        let machine = layout.machine();
        let queries = random_queries(t.n(), 100, &mut rng);
        let res = batched_lca(&machine, &layout, &t, &queries, &mut rng);
        let host = HostLca::new(&t);
        for (qi, &(a, b)) in queries.iter().enumerate() {
            assert_eq!(res.answers[qi], host.query(a, b));
        }
    }

    #[test]
    fn single_vertex_tree() {
        let t = Tree::from_parents(0, vec![spatial_tree::NIL]);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let res = batched_lca(
            &machine,
            &layout,
            &t,
            &[(0, 0)],
            &mut StdRng::seed_from_u64(39),
        );
        assert_eq!(res.answers, vec![0]);
    }
}
