//! Batched lowest common ancestors on the spatial computer (§VI).
//!
//! The paper's LCA algorithm avoids the non-local messaging of earlier
//! PEM/CGM approaches by covering the tree with subtrees derived from a
//! heavy-path decomposition: for every path in the decomposition, the
//! cover contains the subtree rooted at the path's head. Every vertex
//! lies in at most `O(log n)` cover subtrees, and for every query
//! `LCA(u, v) = w ∉ {u, v}` some cover subtree contains exactly one of
//! `u, v` and has `w` as its root's parent (Corollary 3).
//!
//! The four steps of §VI-C, all in the local messaging framework:
//!
//! 1. subtree sizes via bottom-up treefix → contiguous light-first
//!    ranges `r(u)`; ancestor/descendant queries answered immediately;
//! 2. every vertex local-broadcasts its range to its children;
//! 3. path-decomposition layers via top-down treefix;
//! 4. per layer: broadcast `(r(w), r(x))` inside every layer subtree
//!    (the Lemma 13 range broadcast), answer the queries it resolves,
//!    and barrier before the next layer.
//!
//! Total: `O(n log n)` energy and `O(log² n)` depth w.h.p. (Theorem 6),
//! assuming every vertex appears in `O(1)` queries.
//!
//! # Engine layout
//!
//! The implementation is a reusable flat-array engine
//! ([`batched::LcaEngine`]): the rng-independent structure — the
//! layer-indexed CSR [`SubtreeCover`], the light-first child CSR shared
//! by both treefix runs, and the precomputed virtual-tree relay
//! schedule — is built once per tree; each [`batched::LcaEngine::run`]
//! then charges the four §VI-C steps and resolves queries by walking
//! their `O(log n)`-long head chains. The seed implementation is
//! retained in [`reference`] and pinned by the differential suite
//! (`tests/engine_vs_reference.rs`): identical answers, statistics, and
//! machine charges.

pub mod batched;
pub mod cover;
pub mod host;
#[doc(hidden)]
pub mod reference;

pub use batched::{batched_lca, LcaEngine, LcaResult, LcaStats};
pub use cover::{CoverSubtree, SubtreeCover};
pub use host::HostLca;
