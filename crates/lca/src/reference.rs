//! The seed batched-LCA implementation, retained verbatim as the
//! differential baseline for the CSR engine in [`crate::batched`].
//!
//! Nothing here is optimized: the cover is a nested `Vec<Vec<_>>`, the
//! per-call state (ranges, heavy children, decomposition, cover) is
//! rebuilt on every invocation, and step 4 rescans the whole query
//! batch per layer with binary searches. The `engine_vs_reference`
//! suite pins the optimized engine to this one — identical answers,
//! statistics, and machine charges on arbitrary trees, query batches,
//! and seeds.

use crate::batched::{LcaResult, LcaStats};
use crate::cover::CoverSubtree;
use rand::Rng;
use spatial_layout::Layout;
use spatial_messaging::{local_broadcast, VirtualTree};
use spatial_model::{collectives, Machine};
use spatial_tree::{HeavyPathDecomposition, NodeId, Tree, NIL};
use spatial_treefix::{treefix_bottom_up, treefix_top_down, Add};

/// The seed subtree cover: one `Vec` of subtrees per layer.
#[derive(Debug, Clone)]
pub struct ReferenceCover {
    layers: Vec<Vec<CoverSubtree>>,
}

impl ReferenceCover {
    /// Builds the cover from a decomposition, a light-first layout, and
    /// subtree sizes.
    pub fn new(
        tree: &Tree,
        layout: &Layout,
        decomposition: &HeavyPathDecomposition,
        sizes: &[u32],
    ) -> Self {
        let mut layers = vec![Vec::new(); decomposition.num_layers() as usize];
        for v in tree.vertices() {
            if decomposition.head[v as usize] == v {
                let lo = layout.slot(v);
                let subtree = CoverSubtree {
                    root: v,
                    parent: tree.parent(v),
                    lo,
                    hi: lo + sizes[v as usize],
                };
                layers[decomposition.layer[v as usize] as usize].push(subtree);
            }
        }
        // Sort each layer by range start so queries can binary-search.
        for layer in &mut layers {
            layer.sort_by_key(|s| s.lo);
        }
        ReferenceCover { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> u32 {
        self.layers.len() as u32
    }

    /// The subtrees of one layer, sorted by range start.
    pub fn layer(&self, i: u32) -> &[CoverSubtree] {
        &self.layers[i as usize]
    }

    /// Finds the layer-`i` subtree containing a slot, if any (binary
    /// search; same-layer subtrees are disjoint).
    pub fn find_in_layer(&self, i: u32, slot: u32) -> Option<&CoverSubtree> {
        let layer = &self.layers[i as usize];
        let idx = layer.partition_point(|s| s.lo <= slot);
        if idx == 0 {
            return None;
        }
        let cand = &layer[idx - 1];
        cand.contains_slot(slot).then_some(cand)
    }
}

/// The seed four-step batched LCA (§VI-C), kept as the differential
/// baseline. Same contract as [`crate::batched::batched_lca`].
pub fn batched_lca_reference<R: Rng>(
    machine: &Machine,
    layout: &Layout,
    tree: &Tree,
    queries: &[(NodeId, NodeId)],
    rng: &mut R,
) -> LcaResult {
    let n = tree.n();
    debug_assert_eq!(
        spatial_tree::traversal::verify_light_first(tree, layout.order()),
        Ok(()),
        "batched LCA requires a light-first layout"
    );

    // ---- Step 1: subtree sizes (bottom-up treefix), ranges, and ----
    // ---- ancestor/descendant answers.                           ----
    let ones = vec![Add(1); n as usize];
    let tf1 = treefix_bottom_up(machine, layout, tree, &ones, rng);
    let sizes: Vec<u32> = tf1.values.iter().map(|a| a.0 as u32).collect();
    let range = |v: NodeId| -> (u32, u32) {
        let lo = layout.slot(v);
        (lo, lo + sizes[v as usize])
    };
    let in_range = |v: NodeId, r: (u32, u32)| -> bool {
        let s = layout.slot(v);
        r.0 <= s && s < r.1
    };

    let mut answers = vec![NIL; queries.len()];
    let mut answered_step1 = 0u32;
    for (qi, &(a, b)) in queries.iter().enumerate() {
        assert!(a < n && b < n, "query ({a}, {b}) out of range");
        if a == b || in_range(b, range(a)) {
            // Equal vertices or b a descendant of a: the answer is a.
            answers[qi] = a;
            answered_step1 += 1;
        } else if in_range(a, range(b)) {
            answers[qi] = b;
            answered_step1 += 1;
        }
    }

    // ---- Step 2: every vertex broadcasts its range to its children ----
    // ---- (and its heavy child id, which step 3's indicator needs). ----
    let vt = VirtualTree::with_sizes(tree, &sizes);
    vt.charge_construction(machine, layout);
    let ranges: Vec<(u32, u32)> = (0..n).map(range).collect();
    local_broadcast(machine, layout, &vt, tree, &ranges);
    let heavy: Vec<NodeId> = (0..n)
        .map(|v| {
            tree.children(v)
                .iter()
                .copied()
                .max_by_key(|&c| (sizes[c as usize], c))
                .unwrap_or(NIL)
        })
        .collect();
    let heavy_msg = local_broadcast(machine, layout, &vt, tree, &heavy);

    // ---- Step 3: layers via top-down treefix over the light-edge ----
    // ---- indicator.                                              ----
    let indicator: Vec<Add> = (0..n)
        .map(|v| match heavy_msg[v as usize] {
            Some(h) if h == v => Add(0), // heavy child: continues the path
            None => Add(0),              // root
            _ => Add(1),                 // light edge: starts a new path
        })
        .collect();
    let tf3 = treefix_top_down(machine, layout, tree, &indicator, rng);
    let layer: Vec<u32> = tf3.values.iter().map(|a| a.0 as u32).collect();

    // Host-side view of the decomposition for query routing (the
    // machine costs were charged above; this mirrors the distributed
    // state for the answer bookkeeping).
    let decomposition = HeavyPathDecomposition {
        head: (0..n)
            .map(|v| {
                if indicator[v as usize] == Add(1) || tree.parent(v).is_none() {
                    v
                } else {
                    NIL // filled below: non-heads inherit along heavy edges
                }
            })
            .collect(),
        layer: layer.clone(),
        heavy_child: heavy.clone(),
    };
    let mut head = decomposition.head;
    for &v in spatial_tree::traversal::bfs_order(tree).iter() {
        if head[v as usize] == NIL {
            head[v as usize] = head[tree.parent(v).expect("non-root") as usize];
        }
    }
    let decomposition = HeavyPathDecomposition {
        head,
        layer: layer.clone(),
        heavy_child: heavy,
    };
    let cover = ReferenceCover::new(tree, layout, &decomposition, &sizes);

    // ---- Step 4: per layer, broadcast (r(w), r(x)) inside each ----
    // ---- cover subtree, resolve queries, and barrier.          ----
    let resolve = |s: &CoverSubtree, partner: NodeId| -> Option<NodeId> {
        let w = s.parent?;
        let (wlo, whi) = (layout.slot(w), layout.slot(w) + sizes[w as usize]);
        let ps = layout.slot(partner);
        // partner ∈ r(w) \ r(x) ⇒ the answer is w.
        (wlo <= ps && ps < whi && !s.contains_slot(ps)).then_some(w)
    };

    for li in 0..cover.num_layers() {
        // Broadcast within every layer subtree (Lemma 13); ranges of one
        // layer are disjoint, so the broadcasts run in parallel.
        for s in cover.layer(li) {
            if s.hi - s.lo >= 2 {
                collectives::range_broadcast(machine, s.lo, s.hi);
            }
        }
        for (qi, &(a, b)) in queries.iter().enumerate() {
            if answers[qi] != NIL {
                continue;
            }
            if let Some(s) = cover.find_in_layer(li, layout.slot(a)) {
                if let Some(w) = resolve(s, b) {
                    answers[qi] = w;
                    continue;
                }
            }
            if let Some(s) = cover.find_in_layer(li, layout.slot(b)) {
                if let Some(w) = resolve(s, a) {
                    answers[qi] = w;
                }
            }
        }
        // Synchronization barrier before the next layer (§VI-C).
        collectives::barrier(machine);
    }

    debug_assert!(
        answers.iter().all(|&a| a != NIL),
        "Corollary 3 guarantees every query resolves"
    );

    LcaResult {
        answers,
        stats: LcaStats {
            layers: cover.num_layers(),
            answered_step1,
            treefix_rounds: (tf1.stats.compact_rounds, tf3.stats.compact_rounds),
        },
    }
}
