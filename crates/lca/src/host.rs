//! Host-side LCA by binary lifting: the verification oracle for the
//! spatial algorithm (and the "conventional" baseline in benchmarks).

use spatial_tree::{NodeId, Tree, NIL};

/// Binary-lifting LCA structure: `O(n log n)` preprocessing,
/// `O(log n)` per query.
#[derive(Debug, Clone)]
pub struct HostLca {
    /// `up[k][v]`: the `2^k`-th ancestor of `v` (`NIL` above the root).
    up: Vec<Vec<NodeId>>,
    depth: Vec<u32>,
}

impl HostLca {
    /// Preprocesses the tree.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.n() as usize;
        let depth = tree.depths();
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let levels = (32 - max_depth.leading_zeros()).max(1) as usize;
        let mut up = Vec::with_capacity(levels);
        up.push(tree.parents().to_vec());
        for k in 1..levels {
            let prev = &up[k - 1];
            let next: Vec<NodeId> = (0..n)
                .map(|v| {
                    let mid = prev[v];
                    if mid == NIL {
                        NIL
                    } else {
                        prev[mid as usize]
                    }
                })
                .collect();
            up.push(next);
        }
        HostLca { up, depth }
    }

    /// Depth of a vertex (root = 0).
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v as usize]
    }

    /// The ancestor of `v` that is `steps` levels up (`NIL` if above the
    /// root).
    pub fn ancestor(&self, mut v: NodeId, mut steps: u32) -> NodeId {
        let mut k = 0;
        while steps > 0 && v != NIL {
            if k >= self.up.len() {
                return NIL; // more steps than the tree is deep
            }
            if steps & 1 == 1 {
                v = self.up[k][v as usize];
            }
            steps >>= 1;
            k += 1;
        }
        v
    }

    /// Lowest common ancestor of `u` and `v`.
    pub fn query(&self, mut u: NodeId, mut v: NodeId) -> NodeId {
        if self.depth(u) < self.depth(v) {
            std::mem::swap(&mut u, &mut v);
        }
        u = self.ancestor(u, self.depth(u) - self.depth(v));
        if u == v {
            return u;
        }
        for k in (0..self.up.len()).rev() {
            let (au, av) = (self.up[k][u as usize], self.up[k][v as usize]);
            if au != av {
                u = au;
                v = av;
            }
        }
        self.up[0][u as usize]
    }

    /// Whether `a` is an ancestor of `v` (inclusive: `a` is an ancestor
    /// of itself).
    pub fn is_ancestor(&self, a: NodeId, v: NodeId) -> bool {
        self.depth(v) >= self.depth(a) && self.ancestor(v, self.depth(v) - self.depth(a)) == a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use spatial_tree::generators;

    /// Brute-force LCA by walking parents.
    fn naive_lca(tree: &Tree, mut u: NodeId, mut v: NodeId) -> NodeId {
        let depth = tree.depths();
        while depth[u as usize] > depth[v as usize] {
            u = tree.parent(u).unwrap();
        }
        while depth[v as usize] > depth[u as usize] {
            v = tree.parent(v).unwrap();
        }
        while u != v {
            u = tree.parent(u).unwrap();
            v = tree.parent(v).unwrap();
        }
        u
    }

    #[test]
    fn matches_naive_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2u32, 5, 50, 500] {
            let t = generators::uniform_random(n, &mut rng);
            let lca = HostLca::new(&t);
            for _ in 0..200 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                assert_eq!(lca.query(u, v), naive_lca(&t, u, v), "n={n} ({u}, {v})");
            }
        }
    }

    #[test]
    fn self_and_ancestor_queries() {
        let t = generators::path(10);
        let lca = HostLca::new(&t);
        assert_eq!(lca.query(7, 7), 7);
        assert_eq!(lca.query(2, 9), 2);
        assert_eq!(lca.query(9, 2), 2);
        assert_eq!(lca.query(0, 5), 0);
    }

    #[test]
    fn ancestor_steps() {
        let t = generators::path(16);
        let lca = HostLca::new(&t);
        assert_eq!(lca.ancestor(15, 15), 0);
        assert_eq!(lca.ancestor(15, 3), 12);
        assert_eq!(lca.ancestor(15, 16), NIL);
        assert!(lca.is_ancestor(4, 12));
        assert!(!lca.is_ancestor(12, 4));
        assert!(lca.is_ancestor(7, 7));
    }

    #[test]
    fn star_queries() {
        let t = generators::star(20);
        let lca = HostLca::new(&t);
        assert_eq!(lca.query(3, 17), 0);
        assert_eq!(lca.query(0, 5), 0);
    }
}
