//! Differential property suite: the flat-array [`LcaEngine`] must
//! behave *identically* to the retained seed implementation — same
//! answers, same [`LcaStats`], and the same machine charges (energy,
//! messages, work, depth) — and both must agree with the binary-lifting
//! [`HostLca`] oracle, on random trees (skewed, caterpillar, star,
//! balanced), random query batches, and arbitrary Las Vegas seeds.

use proptest::prelude::*;
use rand::prelude::*;
use spatial_layout::Layout;
use spatial_lca::reference::batched_lca_reference;
use spatial_lca::{batched_lca, HostLca, LcaEngine};
use spatial_model::CurveKind;
use spatial_tree::generators::{self, TreeFamily};
use spatial_tree::{NodeId, Tree};

fn random_queries(n: u32, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect()
}

/// Runs both engines on the same inputs and asserts bit-identical
/// results, stats, and machine charges, plus oracle agreement.
fn compare(t: &Tree, queries: &[(NodeId, NodeId)], algo_seed: u64, curve: CurveKind) {
    let layout = Layout::light_first(t, curve);

    let machine_new = layout.machine();
    let res_new = batched_lca(
        &machine_new,
        &layout,
        t,
        queries,
        &mut StdRng::seed_from_u64(algo_seed),
    );

    let machine_ref = layout.machine();
    let res_ref = batched_lca_reference(
        &machine_ref,
        &layout,
        t,
        queries,
        &mut StdRng::seed_from_u64(algo_seed),
    );

    assert_eq!(res_new.answers, res_ref.answers, "answers diverged");
    assert_eq!(res_new.stats, res_ref.stats, "stats diverged");
    assert_eq!(
        machine_new.report(),
        machine_ref.report(),
        "machine charges diverged"
    );

    let host = HostLca::new(t);
    for (qi, &(a, b)) in queries.iter().enumerate() {
        assert_eq!(res_new.answers[qi], host.query(a, b), "query ({a}, {b})");
    }
}

#[test]
fn identical_on_skewed_caterpillar_star_balanced() {
    // The named adversary families: skewed (broom/yule), caterpillar
    // (comb), star, balanced (perfect binary / random binary).
    let mut rng = StdRng::seed_from_u64(1);
    for fam in [
        TreeFamily::Broom,
        TreeFamily::Yule,
        TreeFamily::Comb,
        TreeFamily::Path,
        TreeFamily::Star,
        TreeFamily::PerfectBinary,
        TreeFamily::RandomBinary,
    ] {
        let t = fam.generate(321, &mut rng);
        let queries = random_queries(t.n(), 200, 2);
        compare(&t, &queries, 3, CurveKind::Hilbert);
    }
}

#[test]
fn identical_across_all_families_and_seeds() {
    let mut rng = StdRng::seed_from_u64(4);
    for fam in TreeFamily::ALL {
        let t = fam.generate(200, &mut rng);
        for algo_seed in [0u64, 7, 99] {
            let queries = random_queries(t.n(), 90, 5 + algo_seed);
            compare(&t, &queries, algo_seed, CurveKind::Hilbert);
        }
    }
}

#[test]
fn identical_on_zorder_layouts() {
    let mut rng = StdRng::seed_from_u64(6);
    let t = generators::preferential_attachment(300, &mut rng);
    let queries = random_queries(t.n(), 150, 7);
    compare(&t, &queries, 8, CurveKind::ZOrder);
}

#[test]
fn identical_with_empty_and_degenerate_batches() {
    let mut rng = StdRng::seed_from_u64(9);
    let t = generators::uniform_random(128, &mut rng);
    // Empty batch: the structural phases still charge identically.
    compare(&t, &[], 10, CurveKind::Hilbert);
    // Self queries and repeated pairs.
    compare(
        &t,
        &[(5, 5), (0, 0), (3, 99), (3, 99), (99, 3)],
        11,
        CurveKind::Hilbert,
    );
    // Single vertex.
    let single = Tree::from_parents(0, vec![spatial_tree::NIL]);
    compare(&single, &[(0, 0)], 12, CurveKind::Hilbert);
}

#[test]
fn engine_reuse_charges_like_fresh_runs() {
    // A reused engine must charge each batch exactly like a fresh
    // reference run on a fresh machine.
    let mut rng = StdRng::seed_from_u64(13);
    let t = generators::uniform_random(257, &mut rng);
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let mut engine = LcaEngine::new(&layout, &t);
    for batch in 0..3u64 {
        let queries = random_queries(t.n(), 100, 14 + batch);
        let machine_new = layout.machine();
        let res_new = engine.run(
            &machine_new,
            &queries,
            &mut StdRng::seed_from_u64(20 + batch),
        );
        let machine_ref = layout.machine();
        let res_ref = batched_lca_reference(
            &machine_ref,
            &layout,
            &t,
            &queries,
            &mut StdRng::seed_from_u64(20 + batch),
        );
        assert_eq!(res_new.answers, res_ref.answers, "batch {batch}");
        assert_eq!(res_new.stats, res_ref.stats, "batch {batch}");
        assert_eq!(
            machine_new.report(),
            machine_ref.report(),
            "batch {batch} charges"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary trees (every family via the shared strategy), batch
    /// sizes, and seeds: answers, stats, and charges all identical;
    /// answers match the oracle.
    #[test]
    fn prop_engine_identical_to_reference(
        t in spatial_tree::strategies::arb_tree(300),
        query_seed in 0u64..10_000,
        algo_seed in 0u64..10_000,
        q in 0usize..120,
    ) {
        let queries = random_queries(t.n(), q, query_seed);
        compare(&t, &queries, algo_seed, CurveKind::Hilbert);
    }

    /// Unbounded-degree trees exercise the relay schedule paths.
    #[test]
    fn prop_identical_on_preferential_attachment(
        n in 2u32..250,
        tree_seed in 0u64..10_000,
        algo_seed in 0u64..10_000,
    ) {
        let t = generators::preferential_attachment(
            n, &mut StdRng::seed_from_u64(tree_seed),
        );
        let queries = random_queries(n, (n as usize).min(60), tree_seed ^ 0xabc);
        compare(&t, &queries, algo_seed, CurveKind::Hilbert);
    }
}
