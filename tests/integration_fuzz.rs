//! Workspace-wide differential fuzz harness: random mixed
//! [`QueryBatch`] streams through [`SpatialForest`] versus naive
//! sequential answers computed from the retained reference modules —
//! pinning the **results** (LCA via [`HostLca`], subtree sums via a
//! direct bottom-up accumulation, tour ranks via
//! [`rank_sequential`]) *and* the **machine charge reports** (a
//! second, independently constructed forest replays the identical
//! stream and must report bit-identical [`SessionReport`]s, and a
//! mutation-free batch replayed on a warm forest must re-report its
//! own charges exactly — engine reuse never drifts).
//!
//! The stream generator is seeded through the (deterministic) proptest
//! shim, so CI runs a fixed corpus; bump the case count locally to
//! fuzz wider.

use proptest::prelude::*;
use rand::prelude::*;
use spatial_trees::euler::ranking::rank_sequential;
use spatial_trees::euler::tour::{down, EulerTour};
use spatial_trees::lca::HostLca;
use spatial_trees::session::{QueryBatch, Request, Response, SessionReport, SpatialForest};
use spatial_trees::tree::{strategies, ChildrenCsr, NodeId, Tree, NIL};

/// The naive model: a parent array + weights, answering every request
/// kind sequentially from first principles / reference modules.
struct NaiveModel {
    parents: Vec<NodeId>,
    weights: Vec<u64>,
    /// Rebuilt lazily after mutations: tree, LCA oracle, reference
    /// tour ranks, weighted subtree sums (reverse-BFS accumulation).
    tree: Option<(Tree, HostLca, Vec<u64>, Vec<u64>)>,
}

impl NaiveModel {
    fn new(tree: &Tree) -> Self {
        NaiveModel {
            parents: tree.parents().to_vec(),
            weights: vec![1; tree.n() as usize],
            tree: None,
        }
    }

    fn n(&self) -> u32 {
        self.parents.len() as u32
    }

    /// Materializes the tree, the host LCA oracle, the reference tour
    /// ranks, and the weighted subtree sums for the current shape.
    fn oracle(&mut self) -> &(Tree, HostLca, Vec<u64>, Vec<u64>) {
        if self.tree.is_none() {
            let tree = Tree::from_parents(0, self.parents.clone());
            let host = HostLca::new(&tree);
            let ranks = if tree.n() == 1 {
                Vec::new()
            } else {
                let sizes = tree.subtree_sizes();
                let csr = ChildrenCsr::by_size(&tree, &sizes);
                let tour = EulerTour::light_first_from_csr(&tree, &csr);
                rank_sequential(tour.next_darts(), tour.start())
            };
            // Sums accumulate bottom-up over the reverse BFS order
            // (ids are arbitrary — reverse-id order would be wrong).
            let mut sums = self.weights.clone();
            for &v in spatial_trees::tree::traversal::bfs_order(&tree)
                .iter()
                .rev()
            {
                if let Some(p) = tree.parent(v) {
                    sums[p as usize] += sums[v as usize];
                }
            }
            self.tree = Some((tree, host, ranks, sums));
        }
        self.tree.as_ref().expect("just built")
    }

    fn answer(&mut self, req: Request) -> Response {
        match req {
            Request::Lca(a, b) => {
                let (_, host, _, _) = self.oracle();
                Response::Lca(host.query(a, b))
            }
            Request::SubtreeSum(v) => {
                let (_, _, _, sums) = self.oracle();
                Response::SubtreeSum(sums[v as usize])
            }
            Request::Rank(v) => {
                let (tree, _, ranks, _) = self.oracle();
                let r = if v == tree.root() {
                    0
                } else {
                    ranks[down(v) as usize] + 1
                };
                Response::Rank(r)
            }
            Request::InsertLeaf { parent, weight } => {
                let v = self.parents.len() as NodeId;
                assert_ne!(parent, NIL);
                self.parents.push(parent);
                self.weights.push(weight);
                self.tree = None;
                Response::InsertedLeaf(v)
            }
        }
    }
}

/// Draws a random mixed stream of `len` requests against a tree that
/// starts with `n` vertices (ids stay valid as inserts grow it).
fn random_stream(n0: u32, len: usize, insert_pct: u32, rng: &mut StdRng) -> QueryBatch {
    let mut batch = QueryBatch::with_capacity(len);
    let mut n = n0;
    for _ in 0..len {
        let kind = rng.gen_range(0..100);
        if kind < insert_pct {
            batch.insert_leaf_weighted(rng.gen_range(0..n), rng.gen_range(1..5));
            n += 1;
        } else if kind < insert_pct + 30 {
            batch.lca(rng.gen_range(0..n), rng.gen_range(0..n));
        } else if kind < insert_pct + 65 {
            batch.subtree_sum(rng.gen_range(0..n));
        } else {
            batch.rank(rng.gen_range(0..n));
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random trees (every family via the shared strategy) × random
    /// mixed streams: the forest answers exactly like the naive model,
    /// and an independently constructed twin forest reports identical
    /// charges for the identical stream.
    #[test]
    fn prop_forest_matches_naive_and_charges_are_pinned(
        t in strategies::arb_tree(220),
        stream_seed in 0u64..10_000,
        algo_seed in 0u64..10_000,
    ) {
        let mut forest = SpatialForest::new(&t);
        let mut twin = SpatialForest::new(&t);
        let mut naive = NaiveModel::new(&t);

        let mut stream_rng = StdRng::seed_from_u64(stream_seed);
        let mut reports: Vec<SessionReport> = Vec::new();
        for round in 0..3 {
            let batch = random_stream(naive.n(), 40, 12, &mut stream_rng);

            let responses = forest
                .execute(batch.requests(), &mut StdRng::seed_from_u64(algo_seed + round))
                .to_vec();
            let expected: Vec<Response> = batch
                .requests()
                .iter()
                .map(|&req| naive.answer(req))
                .collect();
            prop_assert_eq!(&responses, &expected, "round {}: answers diverged", round);
            reports.push(forest.last_report());

            // The twin runs the same stream with the same seeds: same
            // answers, bit-identical charge reports.
            let twin_responses = twin
                .execute(batch.requests(), &mut StdRng::seed_from_u64(algo_seed + round))
                .to_vec();
            prop_assert_eq!(&twin_responses, &expected, "round {}: twin diverged", round);
            prop_assert_eq!(
                twin.last_report(), reports[round as usize],
                "round {}: twin charges diverged", round
            );
        }

        // Machine-charge sanity: queries were actually priced.
        prop_assert!(reports.iter().any(|r| r.grid.energy > 0));
    }

    /// Replaying a mutation-free batch on a warm forest re-reports its
    /// own charges exactly: reuse does not drift the meters.
    #[test]
    fn prop_warm_replay_reports_identical_charges(
        t in strategies::arb_tree_sized(2, 300),
        stream_seed in 0u64..10_000,
    ) {
        let mut forest = SpatialForest::new(&t);
        let mut stream_rng = StdRng::seed_from_u64(stream_seed);
        let batch = random_stream(t.n(), 60, 0, &mut stream_rng); // no inserts

        let first = forest
            .execute(batch.requests(), &mut StdRng::seed_from_u64(5))
            .to_vec();
        let first_report = forest.last_report();
        for _ in 0..2 {
            let again = forest.execute(batch.requests(), &mut StdRng::seed_from_u64(5));
            prop_assert_eq!(again, &first[..]);
            prop_assert_eq!(forest.last_report(), first_report);
        }
    }
}

/// A fixed-seed long-stream smoke test for the debug-assertions CI
/// job: heavy insert mix, several hundred requests, every internal
/// debug invariant armed.
#[test]
fn fixed_seed_long_mixed_stream() {
    let t = spatial_trees::tree::generators::uniform_random(150, &mut StdRng::seed_from_u64(1234));
    let mut forest = SpatialForest::new(&t);
    let mut naive = NaiveModel::new(&t);
    let mut stream_rng = StdRng::seed_from_u64(0xf22);
    for round in 0..6u64 {
        let batch = random_stream(naive.n(), 80, 25, &mut stream_rng);
        let responses = forest
            .execute(batch.requests(), &mut StdRng::seed_from_u64(round))
            .to_vec();
        let expected: Vec<Response> = batch
            .requests()
            .iter()
            .map(|&req| naive.answer(req))
            .collect();
        assert_eq!(responses, expected, "round {round}");
    }
    assert_eq!(forest.n(), naive.n());
    assert!(forest.dynamic_stats().insertions > 50);
    assert!(
        forest.pool().stats().rebinds > 0,
        "mutations rebound engines"
    );
}
