//! End-to-end pipeline integration: §IV layout construction feeding §V
//! treefix and §VI LCA, verified against host oracles on every tree
//! family.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_trees::layout::{build_light_first_spatial, Layout};
use spatial_trees::lca::{batched_lca, HostLca};
use spatial_trees::prelude::*;
use spatial_trees::tree::generators::{self, TreeFamily};
use spatial_trees::treefix::{
    treefix_bottom_up, treefix_bottom_up_host, treefix_top_down, treefix_top_down_host,
};

/// The full §IV → §V → §VI pipeline on one tree: build the layout *on
/// the machine*, then run both treefix directions and a batch of LCA
/// queries on that layout, checking everything against host oracles.
fn full_pipeline(tree: &Tree, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = tree.n();

    // §IV: spatial layout construction.
    let (layout, build) = build_light_first_spatial(tree, CurveKind::Hilbert, &mut rng);
    assert_eq!(
        layout.order(),
        &spatial_trees::tree::traversal::light_first_order(tree)[..],
        "spatial pipeline must produce the light-first order"
    );
    if n > 1 {
        assert!(build.total().energy > 0);
    }

    // §V: treefix sums on the constructed layout.
    let machine = layout.machine();
    let values: Vec<Add> = (0..n as u64).map(|v| Add(v % 97 + 1)).collect();
    let bu = treefix_bottom_up(&machine, &layout, tree, &values, &mut rng);
    assert_eq!(bu.values, treefix_bottom_up_host(tree, &values));
    let td = treefix_top_down(&machine, &layout, tree, &values, &mut rng);
    assert_eq!(td.values, treefix_top_down_host(tree, &values));

    // §VI: batched LCA on the same layout and machine.
    let queries: Vec<(NodeId, NodeId)> = (0..(n / 2).max(1))
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let res = batched_lca(&machine, &layout, tree, &queries, &mut rng);
    let oracle = HostLca::new(tree);
    for (qi, &(a, b)) in queries.iter().enumerate() {
        assert_eq!(res.answers[qi], oracle.query(a, b), "LCA({a}, {b})");
    }
}

#[test]
fn pipeline_on_every_family() {
    let mut rng = StdRng::seed_from_u64(1);
    for fam in TreeFamily::ALL {
        let tree = fam.generate(200, &mut rng);
        full_pipeline(&tree, 2);
    }
}

#[test]
fn pipeline_on_medium_random_tree() {
    let mut rng = StdRng::seed_from_u64(3);
    let tree = generators::uniform_random(2000, &mut rng);
    full_pipeline(&tree, 4);
}

#[test]
fn pipeline_tiny_trees() {
    // Degenerate sizes through the whole stack.
    full_pipeline(&Tree::from_parents(0, vec![spatial_trees::tree::NIL]), 5);
    full_pipeline(&generators::path(2), 6);
    full_pipeline(&generators::path(3), 7);
    full_pipeline(&generators::star(4), 8);
}

#[test]
fn facade_matches_manual_pipeline() {
    let mut rng = StdRng::seed_from_u64(9);
    let tree = generators::yule(256, &mut rng);
    let n = tree.n();

    // Facade route.
    let st = SpatialTree::new(tree.clone());
    let m1 = st.machine();
    let facade = st.treefix_sum(
        &m1,
        &vec![Add(1); n as usize],
        &mut StdRng::seed_from_u64(10),
    );

    // Manual route.
    let layout = Layout::light_first(&tree, CurveKind::Hilbert);
    let m2 = layout.machine();
    let manual = treefix_bottom_up(
        &m2,
        &layout,
        &tree,
        &vec![Add(1); n as usize],
        &mut StdRng::seed_from_u64(10),
    );

    assert_eq!(facade.values, manual.values);
    assert_eq!(
        m1.report(),
        m2.report(),
        "identical seeds ⇒ identical costs"
    );
}

#[test]
fn all_curves_support_the_pipeline() {
    let mut rng = StdRng::seed_from_u64(11);
    let tree = generators::preferential_attachment(300, &mut rng);
    let n = tree.n();
    for curve in [CurveKind::Hilbert, CurveKind::ZOrder, CurveKind::Peano] {
        let layout = Layout::light_first(&tree, curve);
        let machine = layout.machine();
        let values = vec![Add(1); n as usize];
        let res = treefix_bottom_up(&machine, &layout, &tree, &values, &mut rng);
        let sizes: Vec<u64> = res.values.iter().map(|&Add(v)| v).collect();
        let expect: Vec<u64> = tree.subtree_sizes().iter().map(|&s| s as u64).collect();
        assert_eq!(sizes, expect, "{curve}");
    }
}
