//! Las Vegas integration: across the whole stack, randomness may change
//! *costs* but never *results* — plus property-based invariants tying
//! the crates together.
//!
//! # Seeding discipline
//!
//! The offline `rand` shim provides exactly one entropy source: the
//! explicit `seed → stream` map of `StdRng::seed_from_u64`. There is no
//! `thread_rng`, no `from_entropy`, and no OS randomness. Every test in
//! this file therefore derives each phase's generator from an explicit
//! constant — tree generation, query generation, and every Las Vegas
//! attempt get their own `seed_from_u64(BASE ^ index)` stream — so no
//! assertion depends on how many values an unrelated phase happened to
//! consume, and the retry loops below terminate identically on every
//! run and every platform.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_trees::euler::ranking::{rank_sequential, RankingEngine, END};
use spatial_trees::layout::Layout;
use spatial_trees::lca::{batched_lca, HostLca, LcaEngine};
use spatial_trees::mincut::{min_cut_host, MinCutPipeline, SpannedGraph};
use spatial_trees::prelude::*;
use spatial_trees::tree::generators;
use spatial_trees::treefix::{treefix_bottom_up, treefix_bottom_up_host};

/// Derives a fresh, independent generator for phase `phase` of test
/// `base` — the only entropy the shim guarantees.
fn rng_for(base: u64, phase: u64) -> StdRng {
    StdRng::seed_from_u64(base.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ phase)
}

#[test]
fn treefix_results_identical_costs_vary() {
    let t = generators::uniform_random(800, &mut rng_for(1, 0));
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let values: Vec<Add> = (0..800u64).map(Add).collect();

    let mut all_energies = Vec::new();
    let expect = treefix_bottom_up_host(&t, &values);
    for seed in 0..12 {
        let machine = layout.machine();
        let res = treefix_bottom_up(&machine, &layout, &t, &values, &mut rng_for(1, 1 + seed));
        assert_eq!(res.values, expect, "seed {seed} changed the result");
        all_energies.push(machine.report().energy);
    }
    // Las Vegas: the cost is a random variable — different seeds should
    // not all coincide (they could in principle, but 12 identical
    // energies would indicate the rng is not reaching the algorithm).
    let distinct: std::collections::HashSet<u64> = all_energies.iter().copied().collect();
    assert!(
        distinct.len() > 1,
        "energy identical across seeds: {all_energies:?}"
    );
}

#[test]
fn lca_results_identical_across_seeds() {
    let t = generators::preferential_attachment(500, &mut rng_for(2, 0));
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let mut query_rng = rng_for(2, 1);
    let queries: Vec<(NodeId, NodeId)> = (0..250)
        .map(|_| (query_rng.gen_range(0..500), query_rng.gen_range(0..500)))
        .collect();
    let oracle = HostLca::new(&t);
    for seed in 0..6 {
        let machine = layout.machine();
        let res = batched_lca(&machine, &layout, &t, &queries, &mut rng_for(2, 2 + seed));
        for (qi, &(a, b)) in queries.iter().enumerate() {
            assert_eq!(res.answers[qi], oracle.query(a, b), "seed {seed}");
        }
    }
}

#[test]
fn compact_rounds_concentrate() {
    // W.h.p. bounds: over many seeds, COMPACT rounds stay within a
    // narrow band around log n (Lemma 11's concentration).
    let n = 1u32 << 12;
    let t = generators::random_binary(n, &mut rng_for(3, 0));
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let values = vec![Add(1); n as usize];
    let mut rounds = Vec::new();
    for seed in 0..20 {
        let machine = layout.machine();
        let res = treefix_bottom_up(&machine, &layout, &t, &values, &mut rng_for(3, 1 + seed));
        rounds.push(res.stats.compact_rounds);
    }
    let max = *rounds.iter().max().unwrap();
    let min = *rounds.iter().min().unwrap();
    assert!(max <= 6 * 12, "worst seed took {max} rounds");
    assert!(
        max - min <= 30,
        "rounds spread too wide: {min}..{max} ({rounds:?})"
    );
}

#[test]
fn ranking_retry_loop_is_deterministic() {
    // The Las Vegas retry pattern: re-run the randomized contraction
    // with explicitly derived per-attempt seeds until the cost meter
    // comes in under a budget. Because attempt `k` always uses
    // `rng_for(4, 2 + k)` — never ambient entropy — the loop accepts
    // the same attempt, with the same cost, on every execution.
    let n = 1usize << 10;
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut shuffle_rng = rng_for(4, 0);
    for i in (1..n).rev() {
        perm.swap(i, shuffle_rng.gen_range(0..=i));
    }
    let mut next = vec![END; n];
    for w in perm.windows(2) {
        next[w[0] as usize] = w[1];
    }
    let (next, start) = (next, perm[0]);
    let expect = rank_sequential(&next, start);

    let run_retry_loop = || {
        let mut engine = RankingEngine::new(&next, start);
        // Median-ish budget: tight enough that some attempts fail, loose
        // enough that an attempt under it exists among the first few.
        let budget = {
            let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
            engine.rank(&m, &mut rng_for(4, 1));
            m.report().energy
        };
        for attempt in 0u64..64 {
            let m = Machine::on_curve(CurveKind::Hilbert, n as u32);
            let rounds = engine.rank(&m, &mut rng_for(4, 2 + attempt));
            assert_eq!(engine.ranks(), &expect[..], "attempt {attempt} wrong");
            if m.report().energy <= budget {
                return (attempt, rounds, m.report());
            }
        }
        panic!("no attempt fit the budget");
    };
    let first = run_retry_loop();
    let second = run_retry_loop();
    assert_eq!(first, second, "retry loop must be deterministic");
}

#[test]
fn mincut_retry_loop_is_deterministic() {
    // Same pattern over the full pipeline: a reused MinCutPipeline,
    // per-attempt seeds derived explicitly, cuts always exact, accepted
    // attempt identical across executions.
    let g = SpannedGraph::random(200, 150, 20, &mut rng_for(5, 0));
    let layout = Layout::light_first(g.tree(), CurveKind::Hilbert);
    let expect = min_cut_host(&g);

    let run_retry_loop = || {
        let mut pipeline = MinCutPipeline::new(&g, &layout);
        let budget = {
            let m = layout.machine();
            pipeline.run(&m, &mut rng_for(5, 1));
            m.report().energy
        };
        for attempt in 0u64..64 {
            let m = layout.machine();
            let res = pipeline.run(&m, &mut rng_for(5, 2 + attempt));
            assert_eq!(res.cuts, expect, "attempt {attempt} wrong cuts");
            if m.report().energy <= budget {
                return (attempt, res.best_vertex, res.best_weight, m.report());
            }
        }
        panic!("no attempt fit the budget");
    };
    assert_eq!(
        run_retry_loop(),
        run_retry_loop(),
        "retry loop must be deterministic"
    );
}

#[test]
fn lca_engine_batches_stable_across_seeds() {
    // A reused LcaEngine answers identically under every seed — the
    // structural state carried between runs is rng-free.
    let t = generators::uniform_random(400, &mut rng_for(6, 0));
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let mut query_rng = rng_for(6, 1);
    let queries: Vec<(NodeId, NodeId)> = (0..200)
        .map(|_| (query_rng.gen_range(0..400), query_rng.gen_range(0..400)))
        .collect();
    let mut engine = LcaEngine::new(&layout, &t);
    let mut baseline: Option<Vec<NodeId>> = None;
    for seed in 0..5 {
        let machine = layout.machine();
        let res = engine.run(&machine, &queries, &mut rng_for(6, 2 + seed));
        match &baseline {
            None => baseline = Some(res.answers),
            Some(b) => assert_eq!(&res.answers, b, "seed {seed}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any tree (via random Prüfer sequences), any seed: spatial treefix
    /// equals the host reference, and the layout keeps subtree ranges
    /// contiguous.
    #[test]
    fn prop_treefix_matches_host(n in 2u32..160, tree_seed in 0u64..1000, algo_seed in 0u64..1000) {
        let t = generators::uniform_random(n, &mut rng_for(7, tree_seed));
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let values: Vec<Add> = (0..n as u64).map(|v| Add(v + 1)).collect();
        let res = treefix_bottom_up(
            &machine, &layout, &t, &values, &mut rng_for(8, algo_seed),
        );
        prop_assert_eq!(res.values, treefix_bottom_up_host(&t, &values));
    }

    /// Light-first layouts place every subtree in a contiguous slot
    /// range (the property the LCA ranges rely on).
    #[test]
    fn prop_subtree_ranges_contiguous(n in 1u32..200, tree_seed in 0u64..1000) {
        let t = generators::uniform_random(n.max(2), &mut rng_for(9, tree_seed));
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let sizes = t.subtree_sizes();
        for v in t.vertices() {
            let lo = layout.slot(v);
            let hi = lo + sizes[v as usize];
            // Every descendant's slot falls inside [lo, hi).
            let mut stack = vec![v];
            while let Some(u) = stack.pop() {
                let s = layout.slot(u);
                prop_assert!(lo <= s && s < hi, "vertex {} outside range of {}", u, v);
                stack.extend_from_slice(t.children(u));
            }
        }
    }

    /// Batched LCA equals binary lifting for arbitrary query batches.
    #[test]
    fn prop_lca_matches_host(n in 2u32..120, tree_seed in 0u64..500, algo_seed in 0u64..500) {
        let t = generators::uniform_random(n, &mut rng_for(10, tree_seed));
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let mut query_rng = rng_for(11, tree_seed);
        let queries: Vec<(NodeId, NodeId)> = (0..n.min(40))
            .map(|_| (query_rng.gen_range(0..n), query_rng.gen_range(0..n)))
            .collect();
        let res = batched_lca(
            &machine, &layout, &t, &queries, &mut rng_for(12, algo_seed),
        );
        let oracle = HostLca::new(&t);
        for (qi, &(a, b)) in queries.iter().enumerate() {
            prop_assert_eq!(res.answers[qi], oracle.query(a, b));
        }
    }
}
