//! Las Vegas integration: across the whole stack, randomness may change
//! *costs* but never *results* — plus property-based invariants tying
//! the crates together.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_trees::layout::Layout;
use spatial_trees::lca::{batched_lca, HostLca};
use spatial_trees::prelude::*;
use spatial_trees::tree::generators;
use spatial_trees::treefix::{treefix_bottom_up, treefix_bottom_up_host};

#[test]
fn treefix_results_identical_costs_vary() {
    let mut rng = StdRng::seed_from_u64(1);
    let t = generators::uniform_random(800, &mut rng);
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let values: Vec<Add> = (0..800u64).map(Add).collect();

    let mut all_energies = Vec::new();
    let expect = treefix_bottom_up_host(&t, &values);
    for seed in 0..12 {
        let machine = layout.machine();
        let res = treefix_bottom_up(
            &machine,
            &layout,
            &t,
            &values,
            &mut StdRng::seed_from_u64(seed),
        );
        assert_eq!(res.values, expect, "seed {seed} changed the result");
        all_energies.push(machine.report().energy);
    }
    // Las Vegas: the cost is a random variable — different seeds should
    // not all coincide (they could in principle, but 12 identical
    // energies would indicate the rng is not reaching the algorithm).
    let distinct: std::collections::HashSet<u64> = all_energies.iter().copied().collect();
    assert!(
        distinct.len() > 1,
        "energy identical across seeds: {all_energies:?}"
    );
}

#[test]
fn lca_results_identical_across_seeds() {
    let mut rng = StdRng::seed_from_u64(2);
    let t = generators::preferential_attachment(500, &mut rng);
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let queries: Vec<(NodeId, NodeId)> = (0..250)
        .map(|_| (rng.gen_range(0..500), rng.gen_range(0..500)))
        .collect();
    let oracle = HostLca::new(&t);
    for seed in 0..6 {
        let machine = layout.machine();
        let res = batched_lca(
            &machine,
            &layout,
            &t,
            &queries,
            &mut StdRng::seed_from_u64(seed),
        );
        for (qi, &(a, b)) in queries.iter().enumerate() {
            assert_eq!(res.answers[qi], oracle.query(a, b), "seed {seed}");
        }
    }
}

#[test]
fn compact_rounds_concentrate() {
    // W.h.p. bounds: over many seeds, COMPACT rounds stay within a
    // narrow band around log n (Lemma 11's concentration).
    let mut rng = StdRng::seed_from_u64(3);
    let n = 1u32 << 12;
    let t = generators::random_binary(n, &mut rng);
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let values = vec![Add(1); n as usize];
    let mut rounds = Vec::new();
    for seed in 0..20 {
        let machine = layout.machine();
        let res = treefix_bottom_up(
            &machine,
            &layout,
            &t,
            &values,
            &mut StdRng::seed_from_u64(seed),
        );
        rounds.push(res.stats.compact_rounds);
    }
    let max = *rounds.iter().max().unwrap();
    let min = *rounds.iter().min().unwrap();
    assert!(max <= 6 * 12, "worst seed took {max} rounds");
    assert!(
        max - min <= 30,
        "rounds spread too wide: {min}..{max} ({rounds:?})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any tree (via random Prüfer sequences), any seed: spatial treefix
    /// equals the host reference, and the layout keeps subtree ranges
    /// contiguous.
    #[test]
    fn prop_treefix_matches_host(n in 2u32..160, tree_seed in 0u64..1000, algo_seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t = generators::uniform_random(n, &mut rng);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let values: Vec<Add> = (0..n as u64).map(|v| Add(v + 1)).collect();
        let res = treefix_bottom_up(
            &machine, &layout, &t, &values, &mut StdRng::seed_from_u64(algo_seed),
        );
        prop_assert_eq!(res.values, treefix_bottom_up_host(&t, &values));
    }

    /// Light-first layouts place every subtree in a contiguous slot
    /// range (the property the LCA ranges rely on).
    #[test]
    fn prop_subtree_ranges_contiguous(n in 1u32..200, tree_seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t = generators::uniform_random(n.max(2), &mut rng);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let sizes = t.subtree_sizes();
        for v in t.vertices() {
            let lo = layout.slot(v);
            let hi = lo + sizes[v as usize];
            // Every descendant's slot falls inside [lo, hi).
            let mut stack = vec![v];
            while let Some(u) = stack.pop() {
                let s = layout.slot(u);
                prop_assert!(lo <= s && s < hi, "vertex {} outside range of {}", u, v);
                stack.extend_from_slice(t.children(u));
            }
        }
    }

    /// Batched LCA equals binary lifting for arbitrary query batches.
    #[test]
    fn prop_lca_matches_host(n in 2u32..120, tree_seed in 0u64..500, algo_seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t = generators::uniform_random(n, &mut rng);
        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let queries: Vec<(NodeId, NodeId)> = (0..n.min(40))
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        let res = batched_lca(
            &machine, &layout, &t, &queries, &mut StdRng::seed_from_u64(algo_seed),
        );
        let oracle = HostLca::new(&t);
        for (qi, &(a, b)) in queries.iter().enumerate() {
            prop_assert_eq!(res.answers[qi], oracle.query(a, b));
        }
    }
}
