//! Out-of-core differential suite: a forest recovered **mapped**
//! (zero-copy slabs over the snapshot file, cold-page touches priced
//! as long-distance messages) must be indistinguishable from its
//! fully-resident owned twin on every axis except the explicit paging
//! rows — identical answers and bit-identical non-paging
//! [`SessionReport`] fields over mixed fuzz streams, even when the
//! slabs exceed the resident-page budget many times over. The paging
//! rows themselves must behave like a real cache: fault counts
//! monotone non-increasing as the budget grows (LRU is a stack
//! algorithm), zero evictions once everything fits.

use rand::prelude::*;
use spatial_trees::model::{PagingConfig, PagingReport};
use spatial_trees::session::{
    ForestBacking, ForestOptions, QueryBatch, Response, SessionReport, SpatialForest,
};
use spatial_trees::tree::generators;

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("spatial-ooc-{tag}-{}", std::process::id()))
}

/// A random mixed request stream (the `integration_fuzz` shape).
fn random_stream(n0: u32, len: usize, insert_pct: u32, rng: &mut StdRng) -> QueryBatch {
    let mut batch = QueryBatch::with_capacity(len);
    let mut n = n0;
    for _ in 0..len {
        let kind = rng.gen_range(0..100);
        if kind < insert_pct {
            batch.insert_leaf_weighted(rng.gen_range(0..n), rng.gen_range(1..5));
            n += 1;
        } else if kind < insert_pct + 30 {
            batch.lca(rng.gen_range(0..n), rng.gen_range(0..n));
        } else if kind < insert_pct + 65 {
            batch.subtree_sum(rng.gen_range(0..n));
        } else {
            batch.rank(rng.gen_range(0..n));
        }
    }
    batch
}

/// Builds a forest with some history (inserts, weight edits, settled
/// layout) and snapshots it to `path`; returns the vertex count.
fn snapshot_worked_forest(path: &std::path::Path, n: u32, seed: u64) -> u32 {
    let tree = generators::uniform_random(n, &mut StdRng::seed_from_u64(seed));
    let mut forest = SpatialForest::new(&tree);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAB);
    let mut batch = QueryBatch::new();
    for i in 0..40u32 {
        batch.insert_leaf_weighted(i % n, (i as u64 % 7) + 1);
    }
    batch.lca(0, n - 1).subtree_sum(0).rank(1);
    forest.execute(batch.requests(), &mut rng);
    for v in 0..(n / 2) {
        forest.set_weight(v, (v as u64 % 13) + 1);
    }
    forest.snapshot_to(path, 1).expect("snapshot");
    forest.n()
}

/// The same report with the paging rows removed — everything that must
/// be bit-identical between a mapped forest and its owned twin.
fn strip_paging(mut report: SessionReport) -> SessionReport {
    report.paging = None;
    report
}

/// Mapped recovery with a resident budget far below the slab footprint
/// serves a full mixed stream (queries *and* promoting mutations)
/// bit-identically to the owned twin, with paging charges reported.
#[test]
fn mapped_forest_matches_owned_twin_beyond_its_budget() {
    let snap_path = temp_path("differential");
    let n = snapshot_worked_forest(&snap_path, 3000, 42);
    let journal = temp_path("differential-nojournal");

    // 4 resident pages (16 KiB) against slabs an order of magnitude
    // bigger: parents + order + weights together are ~16 n bytes.
    let paging = PagingConfig {
        page_bytes: 4096,
        resident_pages: 4,
    };
    let mut mapped = SpatialForest::recover_with(
        &snap_path,
        &journal,
        ForestOptions {
            paging: Some(paging),
            ..ForestOptions::default()
        },
        ForestBacking::Mapped,
    )
    .expect("mapped recovery");
    let mut owned = SpatialForest::recover_with(
        &snap_path,
        &journal,
        ForestOptions::default(),
        ForestBacking::Owned,
    )
    .expect("owned recovery");
    assert_eq!(mapped.backing(), ForestBacking::Mapped);
    assert_eq!(owned.backing(), ForestBacking::Owned);
    assert!(mapped.any_slab_mapped(), "slabs start zero-copy");
    let constructed = mapped.paging_lifetime().expect("paging configured");
    assert!(
        constructed.faults > 0,
        "construction reads fault cold pages"
    );

    // Round 0 is query-only (slabs stay mapped: every flush re-touches
    // them), later rounds mix in inserts (which CoW-promote).
    let mut stream_rng = StdRng::seed_from_u64(7);
    for round in 0..4u64 {
        let insert_pct = if round == 0 { 0 } else { 12 };
        let batch = random_stream(mapped.n(), 60, insert_pct, &mut stream_rng);
        let got = mapped
            .execute(batch.requests(), &mut StdRng::seed_from_u64(round))
            .to_vec();
        let want = owned
            .execute(batch.requests(), &mut StdRng::seed_from_u64(round))
            .to_vec();
        assert_eq!(got, want, "round {round}: answers diverged");
        assert_eq!(
            strip_paging(mapped.last_report()),
            strip_paging(owned.last_report()),
            "round {round}: non-paging charges diverged"
        );
        let paging = mapped.last_report().paging.expect("paging rows present");
        assert!(owned.last_report().paging.is_none());
        if round == 0 {
            assert!(
                paging.faults > 0,
                "query-only session over mapped slabs must fault"
            );
            assert!(paging.charge.energy > 0 && paging.charge.messages > 0);
        }
    }
    // The mutating rounds promoted the mapped slabs copy-on-write.
    assert!(
        !mapped.any_slab_mapped(),
        "inserts promote every mapped slab"
    );
    assert_eq!(mapped.n(), owned.n());
    assert!(mapped.n() > n, "the stream inserted");

    std::fs::remove_file(&snap_path).ok();
}

/// LRU residency is a stack algorithm: over the identical query-only
/// stream, fault counts are monotone non-increasing in the resident
/// budget, and a budget that holds everything stops evicting. Answers
/// never depend on the budget.
#[test]
fn paging_faults_are_monotone_under_shrinking_budgets() {
    let snap_path = temp_path("monotone");
    snapshot_worked_forest(&snap_path, 2048, 9);
    let journal = temp_path("monotone-nojournal");

    let budgets = [1usize, 2, 4, 8, 32, 1 << 14];
    let mut lifetimes: Vec<PagingReport> = Vec::new();
    let mut answers: Vec<Vec<Response>> = Vec::new();
    for &resident_pages in &budgets {
        let mut forest = SpatialForest::recover_with(
            &snap_path,
            &journal,
            ForestOptions {
                paging: Some(PagingConfig {
                    page_bytes: 4096,
                    resident_pages,
                }),
                ..ForestOptions::default()
            },
            ForestBacking::Mapped,
        )
        .expect("mapped recovery");
        let mut stream_rng = StdRng::seed_from_u64(31);
        let mut got = Vec::new();
        for round in 0..3u64 {
            let batch = random_stream(forest.n(), 50, 0, &mut stream_rng);
            got.extend_from_slice(
                forest.execute(batch.requests(), &mut StdRng::seed_from_u64(round)),
            );
        }
        assert!(forest.any_slab_mapped(), "query-only stream never promotes");
        lifetimes.push(forest.paging_lifetime().expect("paging configured"));
        answers.push(got);
    }

    for w in lifetimes.windows(2) {
        assert!(
            w[1].faults <= w[0].faults,
            "faults must not increase with a bigger budget: {lifetimes:?}"
        );
    }
    let tightest = &lifetimes[0];
    let fits_all = lifetimes.last().expect("budgets nonempty");
    assert!(
        tightest.faults > fits_all.faults,
        "a one-page budget must re-fault what a fits-everything budget keeps"
    );
    assert_eq!(
        fits_all.evictions, 0,
        "nothing is evicted once every slab page fits"
    );
    for got in &answers[1..] {
        assert_eq!(got, &answers[0], "answers depended on the paging budget");
    }

    std::fs::remove_file(&snap_path).ok();
}
