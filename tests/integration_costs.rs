//! Cross-crate cost-shape integration: the theorems' energy/depth
//! bounds measured end-to-end (small-scale versions of the EXPERIMENTS
//! tables, kept fast enough for `cargo test`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_trees::layout::{edge_distance_stats, local_kernel_energy, Layout};
use spatial_trees::lca::batched_lca;
use spatial_trees::pram::{pram_subtree_sums, PramEngine};
use spatial_trees::prelude::*;
use spatial_trees::tree::generators;
use spatial_trees::treefix::treefix_bottom_up;

/// Theorem 1 + Theorem 2: the messaging kernel is linear on every
/// energy-bound curve, for bounded and unbounded degrees alike.
#[test]
fn kernel_energy_linear_across_curves() {
    let mut rng = StdRng::seed_from_u64(1);
    for curve in [CurveKind::Hilbert, CurveKind::ZOrder, CurveKind::Peano] {
        let mut per_n = Vec::new();
        for log_n in [12u32, 14] {
            let t = generators::uniform_random(1 << log_n, &mut rng);
            let l = Layout::light_first(&t, curve);
            per_n.push(local_kernel_energy(&t, &l) as f64 / t.n() as f64);
        }
        assert!(
            per_n[1] < per_n[0] * 1.4,
            "{curve}: kernel energy/n grew {per_n:?}"
        );
        assert!(per_n[1] < 8.0, "{curve}: kernel energy/n = {}", per_n[1]);
    }
}

/// §III's negative examples, quantified: BFS on a perfect binary tree
/// and a random layout both scale like √n per edge; light-first stays
/// constant.
#[test]
fn adversarial_layouts_scale_sqrt_n() {
    let mut rng = StdRng::seed_from_u64(2);
    let t_small = generators::perfect_kary(2, 10);
    let t_large = generators::perfect_kary(2, 14);

    let bfs_small = edge_distance_stats(&t_small, &Layout::bfs(&t_small, CurveKind::Hilbert));
    let bfs_large = edge_distance_stats(&t_large, &Layout::bfs(&t_large, CurveKind::Hilbert));
    // √n grows 4× from 2^11 to 2^15 vertices; expect ≥ 2× mean growth.
    assert!(
        bfs_large.mean > 2.0 * bfs_small.mean,
        "BFS mean should grow ~√n: {} → {}",
        bfs_small.mean,
        bfs_large.mean
    );

    let lf_large =
        edge_distance_stats(&t_large, &Layout::light_first(&t_large, CurveKind::Hilbert));
    assert!(
        lf_large.mean < 4.0,
        "light-first stays O(1): {}",
        lf_large.mean
    );

    let rand_large = edge_distance_stats(
        &t_large,
        &Layout::random(&t_large, CurveKind::Hilbert, &mut rng),
    );
    assert!(
        rand_large.mean > 20.0 * lf_large.mean,
        "random layout must be far worse: {} vs {}",
        rand_large.mean,
        lf_large.mean
    );
}

/// The §I-C headline: spatial treefix `O(n log n)` energy vs PRAM
/// simulation `Θ(n^{3/2})` — and the gap widens with n.
#[test]
fn spatial_beats_pram_and_gap_widens() {
    let mut gaps = Vec::new();
    for log_n in [10u32, 12] {
        let n = 1u32 << log_n;
        let mut rng = StdRng::seed_from_u64(3);
        let t = generators::random_binary(n, &mut rng);
        let values: Vec<u64> = (0..n as u64).collect();

        let layout = Layout::light_first(&t, CurveKind::Hilbert);
        let machine = layout.machine();
        let monoids: Vec<Add> = values.iter().map(|&v| Add(v)).collect();
        let spatial = treefix_bottom_up(&machine, &layout, &t, &monoids, &mut rng);
        let spatial_energy = machine.report().energy;

        let mut pram = PramEngine::new(2 * n, 2 * n, &mut rng);
        let pram_res = pram_subtree_sums(&mut pram, &t, &values, &mut rng);
        let pram_energy = pram.report().energy;

        // Same answers.
        let got: Vec<u64> = spatial.values.iter().map(|&Add(v)| v).collect();
        assert_eq!(got, pram_res);

        assert!(
            pram_energy > 4 * spatial_energy,
            "n=2^{log_n}: PRAM {pram_energy} vs spatial {spatial_energy}"
        );
        gaps.push(pram_energy as f64 / spatial_energy as f64);
    }
    assert!(
        gaps[1] > gaps[0] * 1.3,
        "the PRAM gap must widen with n: {gaps:?}"
    );
}

/// Theorem 6's costs measured through the whole stack, plus the
/// PRAM-simulated permutation bound for scale: LCA beats `n^{3/2}`.
/// (The `n log n` vs `n^{3/2}` crossover sits near n ≈ 2^13 with our
/// constants, so this measures at 2^14.)
#[test]
fn lca_energy_beats_permutation_bound() {
    let n = 1u32 << 14;
    let mut rng = StdRng::seed_from_u64(4);
    let t = generators::uniform_random(n, &mut rng);
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let machine = layout.machine();
    let queries: Vec<(NodeId, NodeId)> = (0..n / 2)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    batched_lca(&machine, &layout, &t, &queries, &mut rng);
    let r = machine.report();
    let n_three_halves = (n as f64).powf(1.5);
    assert!(
        (r.energy as f64) < n_three_halves,
        "LCA energy {} should be below n^1.5 = {n_three_halves}",
        r.energy
    );
    assert!(
        r.energy_per_n_log_n(n as u64) < 12.0,
        "energy/(n log n) = {}",
        r.energy_per_n_log_n(n as u64)
    );
}

/// Depth through the full stack stays poly-logarithmic even on a path
/// (the worst case for naive traversals: depth n).
#[test]
fn depth_polylog_on_path() {
    let n = 1u32 << 13;
    let mut rng = StdRng::seed_from_u64(5);
    let t = generators::path(n);
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let machine = layout.machine();
    treefix_bottom_up(&machine, &layout, &t, &vec![Add(1); n as usize], &mut rng);
    let depth = machine.report().depth;
    let log_n = (n as f64).log2();
    assert!(
        (depth as f64) < 20.0 * log_n,
        "path treefix depth {depth} should be O(log n) ≈ {log_n:.0}"
    );
}

/// The work (local operations) of the treefix stays near-linear — the
/// energy ≤ work relationship from §II-A holds for the message part.
#[test]
fn message_counts_near_linear() {
    let n = 1u32 << 12;
    let mut rng = StdRng::seed_from_u64(6);
    let t = generators::preferential_attachment(n, &mut rng);
    let layout = Layout::light_first(&t, CurveKind::Hilbert);
    let machine = layout.machine();
    treefix_bottom_up(&machine, &layout, &t, &vec![Add(1); n as usize], &mut rng);
    let r = machine.report();
    let per_vertex = r.messages as f64 / n as f64;
    assert!(
        per_vertex < 12.0 * (n as f64).log2() / (n as f64).log2(),
        "messages per vertex {per_vertex} too high"
    );
    // Mean message distance must be O(1): locality is real, not an
    // artifact of sending few messages.
    assert!(
        r.mean_message_distance() < 6.0,
        "mean message distance {}",
        r.mean_message_distance()
    );
}
