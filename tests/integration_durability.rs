//! Crash-injection fuzz for the durable forest path.
//!
//! The protocol under test: snapshot the forest, journal every durable
//! mutation write-ahead, and after a crash rebuild the forest as
//! snapshot + the journal's surviving record prefix. The crash is
//! simulated at the byte level — the journal file is truncated at
//! arbitrary offsets, including mid-record — and recovery must land on
//! a forest that is **bit-identical going forward** to one that
//! honestly lived through exactly the surviving mutations: the same
//! answers *and* the same `SessionReport` charges for every future
//! batch, across `DynamicLayout` capacity growths and query-triggered
//! rebuilds. All seeds are fixed; the fuzz is deterministic in CI.

use rand::prelude::*;
use spatial_trees::session::{ForestBacking, ForestOptions, QueryBatch, Request, SpatialForest};
use spatial_trees::store::delta::{
    commit_delta_without_applying_for_tests, partially_apply_pending_delta_for_tests,
};
use spatial_trees::store::{
    delta_path, parse_journal, DirtyExtents, ForestSnapshot, JournalWriter, Record, RECORD_BYTES,
};

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("spatial-durability-{tag}-{}", std::process::id()))
}

/// Replays journal records through the **public API only** — the
/// honest-history reference a recovered forest is compared against.
/// Inserts go through `execute`, weight changes through `set_weight`,
/// and a `Rebuild` record is provoked the way the original was: by a
/// query that requires the light-first order.
fn replay_via_public_api(
    snap: &ForestSnapshot,
    opts: ForestOptions,
    records: &[Record],
) -> SpatialForest {
    let mut forest = SpatialForest::from_snapshot(snap, opts);
    let mut rng = StdRng::seed_from_u64(0xFACE);
    for rec in records {
        match *rec {
            Record::InsertLeaf { parent, weight } => {
                forest.execute(&[Request::InsertLeaf { parent, weight }], &mut rng);
            }
            Record::SetWeight { vertex, weight } => forest.set_weight(vertex, weight),
            Record::Rebuild => {
                // At this point of any valid history the layout is
                // dirty, so an LCA query forces exactly one rebuild.
                let before = forest.dynamic_stats().rebuilds;
                forest.execute(&[Request::Lca(0, 0)], &mut rng);
                assert_eq!(
                    forest.dynamic_stats().rebuilds,
                    before + 1,
                    "journaled Rebuild did not correspond to a dirty layout"
                );
            }
            Record::RngState(_) => {}
        }
    }
    forest
}

/// The two forests must be indistinguishable from the outside: same
/// structure and layout, and a shared future — identical answers and
/// identical charges on a mixed verification batch.
fn assert_forests_equivalent(a: &mut SpatialForest, b: &mut SpatialForest, ctx: &str) {
    assert_eq!(a.n(), b.n(), "{ctx}: vertex count");
    assert_eq!(a.dynamic_stats(), b.dynamic_stats(), "{ctx}: dynamic stats");
    assert_eq!(
        a.layout().order(),
        b.layout().order(),
        "{ctx}: layout order"
    );

    let n = a.n();
    let mut probe = QueryBatch::new();
    for i in 0..15u32 {
        probe
            .lca(i % n, (i * 13 + 2) % n)
            .subtree_sum((i * 5) % n)
            .rank((i * 3 + 1) % n);
    }
    probe.insert_leaf(0).subtree_sum(0);
    let ans_a = a
        .execute(probe.requests(), &mut StdRng::seed_from_u64(0xBEEF))
        .to_vec();
    let ans_b = b
        .execute(probe.requests(), &mut StdRng::seed_from_u64(0xBEEF))
        .to_vec();
    assert_eq!(ans_a, ans_b, "{ctx}: future answers diverged");
    assert_eq!(
        a.last_report(),
        b.last_report(),
        "{ctx}: future charges diverged"
    );
}

/// Drives a journaled forest through a mixed workload that crosses at
/// least one capacity growth and triggers query-forced rebuilds, then
/// kills the journal at fuzzed byte offsets and checks every surviving
/// prefix recovers bit-identically.
#[test]
fn kill_at_random_offset_recovery_is_bit_identical() {
    for seed in [1u64, 7, 42] {
        let journal_path = temp_path(&format!("kill-journal-{seed}"));
        let snap_path = temp_path(&format!("kill-snap-{seed}"));

        let mut tree_rng = StdRng::seed_from_u64(seed);
        // n = 24 reserves 48 slots; ~100 inserts cross the doubling to
        // 96 and then to 192 — the growth events the replay must
        // reproduce exactly.
        let tree = spatial_trees::tree::generators::uniform_random(24, &mut tree_rng);
        let opts = ForestOptions::default();
        let mut live = SpatialForest::with_options(&tree, opts);

        // Snapshot at time zero (through the file format, so the fuzz
        // also crosses encode/decode), then journal everything after.
        live.snapshot_to(&snap_path, seed).expect("snapshot");
        let snap = ForestSnapshot::read_from(&snap_path).expect("read snapshot");
        assert_eq!(snap.tag, seed, "caller tag survives the roundtrip");
        live.attach_journal(JournalWriter::create(&journal_path).expect("journal"));

        let mut wl_rng = StdRng::seed_from_u64(seed ^ 0x0DD5);
        for round in 0..12u32 {
            let mut batch = QueryBatch::new();
            for _ in 0..9 {
                batch.insert_leaf_weighted(
                    wl_rng.gen_range(0..live.n()),
                    wl_rng.gen_range(1..100u64),
                );
            }
            // Queries force light-first rebuilds mid-history (Rebuild
            // records in the journal).
            let n = live.n();
            batch
                .lca(wl_rng.gen_range(0..n), wl_rng.gen_range(0..n))
                .subtree_sum(wl_rng.gen_range(0..n))
                .rank(wl_rng.gen_range(0..n));
            live.execute(batch.requests(), &mut StdRng::seed_from_u64(round as u64));
            live.set_weight(wl_rng.gen_range(0..live.n()), wl_rng.gen_range(1..1000u64));
        }
        live.journal_mut().expect("attached").sync().expect("sync");
        live.detach_journal();
        assert!(
            live.dynamic_stats().grows >= 2,
            "workload must cross capacity growths"
        );

        let bytes = std::fs::read(&journal_path).expect("journal bytes");
        let full = parse_journal(&bytes);
        assert!(
            full.iter().any(|r| matches!(r, Record::Rebuild)),
            "workload must journal query-triggered rebuilds"
        );

        // Crash offsets: the ends, record boundaries, mid-record cuts,
        // and a batch of fuzzed positions — all fixed-seed.
        let mut cuts = vec![
            0,
            bytes.len(),
            bytes.len() - 1,
            RECORD_BYTES,
            RECORD_BYTES - 3,
        ];
        let mut cut_rng = StdRng::seed_from_u64(seed ^ 0xC07);
        cuts.extend((0..12).map(|_| cut_rng.gen_range(0..=bytes.len())));

        for cut in cuts {
            let surviving = parse_journal(&bytes[..cut]);
            assert_eq!(surviving.len(), cut / RECORD_BYTES, "cut {cut}");

            let mut recovered = SpatialForest::from_snapshot(&snap, opts);
            recovered.apply_journal(&surviving);
            let mut reference = replay_via_public_api(&snap, opts, &surviving);
            assert_forests_equivalent(
                &mut recovered,
                &mut reference,
                &format!("seed {seed}, cut {cut}"),
            );
        }

        // The intact journal recovers the live forest itself.
        let mut recovered = SpatialForest::from_snapshot(&snap, opts);
        recovered.apply_journal(&full);
        assert_forests_equivalent(
            &mut recovered,
            &mut live,
            &format!("seed {seed}, full journal vs live"),
        );

        std::fs::remove_file(&journal_path).ok();
        std::fs::remove_file(&snap_path).ok();
    }
}

/// `recover_from` — the one-call snapshot + journal path — equals the
/// live forest, including when the journal ends in a torn record.
#[test]
fn recover_from_tolerates_a_torn_tail() {
    let journal_path = temp_path("torn-journal");
    let snap_path = temp_path("torn-snap");

    let tree = spatial_trees::tree::generators::path(30);
    let opts = ForestOptions::default();
    let mut live = SpatialForest::with_options(&tree, opts);
    live.snapshot_to(&snap_path, 0).expect("snapshot");
    live.attach_journal(JournalWriter::create(&journal_path).expect("journal"));

    let mut batch = QueryBatch::new();
    for i in 0..40u32 {
        batch.insert_leaf(i % 30).lca(i % 30, (i + 3) % 30);
    }
    live.execute(batch.requests(), &mut StdRng::seed_from_u64(5));
    live.journal_mut().expect("attached").sync().expect("sync");
    live.detach_journal();

    // Tear the journal mid-record: append half a valid frame.
    let half = Record::InsertLeaf {
        parent: 0,
        weight: 1,
    }
    .encode();
    let mut bytes = std::fs::read(&journal_path).expect("bytes");
    let intact = parse_journal(&bytes).len();
    bytes.extend_from_slice(&half[..RECORD_BYTES / 2]);
    std::fs::write(&journal_path, &bytes).expect("rewrite");

    let mut recovered =
        SpatialForest::recover_from(&snap_path, &journal_path, opts).expect("recover");
    assert_eq!(
        recovered.dynamic_stats().insertions,
        live.dynamic_stats().insertions,
        "the torn half-record must not lose intact history ({intact} records)"
    );
    assert_forests_equivalent(&mut recovered, &mut live, "torn tail");

    std::fs::remove_file(&journal_path).ok();
    std::fs::remove_file(&snap_path).ok();
}

/// An incremental checkpoint of a weight-edit-heavy ("dirty tail")
/// history writes a small fraction of the full snapshot, and a crash
/// at any point of the in-place patch — injected byte budget by byte
/// budget through the store's test hook — recovers bit-identically
/// through the public `recover_with`, under both backings.
#[test]
fn incremental_checkpoint_crash_recovers_bit_identically() {
    let snap_path = temp_path("incr-snap");
    let journal_path = temp_path("incr-journal"); // never created: empty history

    // Base generation on disk, tracked by a recovered forest.
    let tree = spatial_trees::tree::generators::uniform_random(600, &mut StdRng::seed_from_u64(3));
    let opts = ForestOptions::default();
    let mut seed_forest = SpatialForest::with_options(&tree, opts);
    // Settle the layout so the dirty-tail workload below triggers no
    // rebuild (a rebuild rewrites the whole order slab).
    seed_forest.execute(
        QueryBatch::new().lca(0, 599).requests(),
        &mut StdRng::seed_from_u64(30),
    );
    seed_forest
        .snapshot_to(&snap_path, 1)
        .expect("base snapshot");
    let base = ForestSnapshot::read_from(&snap_path).expect("read base");
    let mut live = SpatialForest::from_snapshot(&base, opts);

    // Dirty-tail workload: many weight edits, a few appends, no grow.
    let mut wl_rng = StdRng::seed_from_u64(0x11);
    for _ in 0..120 {
        live.set_weight(wl_rng.gen_range(0..600), wl_rng.gen_range(1..1000u64));
    }
    let mut tail = QueryBatch::new();
    for i in 0..8u32 {
        tail.insert_leaf_weighted(i, 7);
    }
    live.execute(tail.requests(), &mut StdRng::seed_from_u64(31));

    // Uninterrupted incremental checkpoint: small, and recoverable.
    let full_len = std::fs::metadata(&snap_path).expect("base meta").len();
    let stats = live.checkpoint_to(&snap_path, 2).expect("checkpoint");
    assert!(stats.incremental, "dirty-tail workload patches extents");
    assert!(
        stats.bytes_written * 4 <= full_len,
        "incremental wrote {} of a {} byte snapshot",
        stats.bytes_written,
        full_len
    );
    // The checkpointed state, captured before the equivalence probe
    // below mutates `live`.
    let target = live.snapshot(2);
    let mut recovered =
        SpatialForest::recover_from(&snap_path, &journal_path, opts).expect("recover");
    assert_eq!(recovered.replayed_records(), 0, "no journal to replay");
    assert_forests_equivalent(&mut recovered, &mut live, "uninterrupted incremental");

    // Crash injection: rebuild the pre-checkpoint base, re-commit the
    // same delta without applying it, and kill the patch at a sweep of
    // byte budgets. Recovery must always land on the checkpointed
    // state, whichever backing reopens the file.
    let mut weight_cells: Vec<u32> = Vec::new();
    for v in 0..600u32 {
        if base.weights[v as usize] != target.weights[v as usize] {
            weight_cells.push(v);
        }
    }
    assert!(weight_cells.len() >= 60, "workload dirtied many cells");
    let extents = DirtyExtents {
        base_len: base.parents.len() as u32,
        order_rewritten: false,
        weight_cells,
    };
    let mut cut = 0u64;
    loop {
        spatial_trees::store::atomic_write(&snap_path, &base.encode()).expect("reset base");
        let committed = commit_delta_without_applying_for_tests(
            &snap_path,
            &target,
            &extents,
            base.slab_crcs(),
        )
        .expect("commit delta")
        .expect("base validates");
        let torn = partially_apply_pending_delta_for_tests(&snap_path, cut).expect("partial patch");
        assert!(torn <= cut, "patch wrote past the injected crash");
        let backing = if cut.is_multiple_of(128) {
            ForestBacking::Mapped
        } else {
            ForestBacking::Owned
        };
        let mut after_crash = SpatialForest::recover_with(&snap_path, &journal_path, opts, backing)
            .expect("recover after injected crash");
        let mut expect = SpatialForest::from_snapshot(&target, opts);
        assert_forests_equivalent(
            &mut after_crash,
            &mut expect,
            &format!("crash at {cut} of {committed} delta bytes"),
        );
        if cut >= committed {
            break;
        }
        cut = (cut + 64).min(committed);
    }
    assert!(
        !delta_path(&snap_path).exists(),
        "recovery retires the pending delta"
    );

    std::fs::remove_file(&snap_path).ok();
}

/// `recover_from` reports exactly how many journal records it applied:
/// zero for a missing journal (the empty-tail short-circuit), the
/// record count otherwise.
#[test]
fn recovery_counts_applied_records() {
    let snap_path = temp_path("count-snap");
    let journal_path = temp_path("count-journal");

    let tree = spatial_trees::tree::generators::path(50);
    let opts = ForestOptions::default();
    let mut live = SpatialForest::with_options(&tree, opts);
    live.snapshot_to(&snap_path, 0).expect("snapshot");

    // Missing journal: nothing replayed.
    let empty = SpatialForest::recover_from(&snap_path, &journal_path, opts).expect("recover");
    assert_eq!(empty.replayed_records(), 0);

    // Journal some mutations, then recover and count.
    live.attach_journal(JournalWriter::create(&journal_path).expect("journal"));
    let mut batch = QueryBatch::new();
    for i in 0..10u32 {
        batch.insert_leaf(i % 50);
    }
    live.execute(batch.requests(), &mut StdRng::seed_from_u64(1));
    live.set_weight(3, 99);
    live.journal_mut().expect("attached").sync().expect("sync");
    live.detach_journal();

    let recovered = SpatialForest::recover_from(&snap_path, &journal_path, opts).expect("recover");
    let on_disk = parse_journal(&std::fs::read(&journal_path).expect("bytes")).len() as u64;
    assert_eq!(recovered.replayed_records(), on_disk);
    assert!(on_disk >= 11, "inserts + weight edit were journaled");

    std::fs::remove_file(&journal_path).ok();
    std::fs::remove_file(&snap_path).ok();
}

/// A snapshot taken mid-lifetime — dirty layout, growths and rebuilds
/// already behind it — restores bit-identically with no journal at all.
#[test]
fn mid_stream_snapshot_roundtrip_is_bit_identical() {
    let snap_path = temp_path("midstream-snap");
    let mut rng = StdRng::seed_from_u64(77);
    let tree = spatial_trees::tree::generators::uniform_random(40, &mut rng);
    let opts = ForestOptions {
        rebuild_factor: 3.0,
        ..ForestOptions::default()
    };
    let mut live = SpatialForest::with_options(&tree, opts);

    // Mutate past a growth, and end on a bare insert so the snapshot
    // captures `layout_dirty = true` (the non-light-first state).
    let mut batch = QueryBatch::new();
    for i in 0..70u32 {
        batch.insert_leaf(i % 40);
        if i % 9 == 0 {
            batch.rank(i % 40);
        }
    }
    batch.insert_leaf(0);
    live.execute(batch.requests(), &mut StdRng::seed_from_u64(78));
    assert!(live.dynamic_stats().grows >= 1);

    live.snapshot_to(&snap_path, 3).expect("snapshot");
    let snap = ForestSnapshot::read_from(&snap_path).expect("read");
    assert!(
        snap.layout_dirty,
        "snapshot must capture the dirty-layout state"
    );
    let mut restored = SpatialForest::from_snapshot(&snap, opts);
    assert_forests_equivalent(&mut restored, &mut live, "mid-stream snapshot");

    std::fs::remove_file(&snap_path).ok();
}
